//! The pipelined dataflow executor: the staged epoch schedule of
//! [`crate::driver`] spread across four long-lived worker threads
//! connected by bounded channels, so consecutive epochs overlap while
//! per-epoch ordering — and therefore every checksummed byte — is
//! preserved.
//!
//! # Stage / channel architecture
//!
//! ```text
//!             orders(t+1)                 pooled buffers
//!        ┌─────────────────── S2 ◀──────────────────────┐
//!        ▼                     ▲ │ actions(t-1)          │
//!   S1 drain ── batch(t) ──────┘ │    ▲                  │
//!   (crowd: prologue,            │    │                  │
//!    execute, steps, drain)      ▼    │                  │
//!                        S2 ingest (handler/fabricator:  │
//!                         apply, retry, issue, absorb,   │
//!                         tune, report, observation) ────┘
//!                                │
//!                          obs(t) ▼
//!                        S3 control (hook) ── actions(t) ──▶ back to S2
//!                                │
//!                          tap(t) ▼
//!                        S4 render (tap / log append) ── raw buffers ──▶ S2
//! ```
//!
//! Every message is tagged with its epoch id; data channels are bounded
//! (`sync_channel(2)`) so a fast stage can run at most a couple of
//! epochs ahead, and buffer-return channels flow upstream so the hot
//! path recycles allocations ([`crate::driver::PoolStats`]).
//!
//! # Why the bytes cannot change
//!
//! Each stage *owns* its state: S1 the crowd, S2 the planner half
//! ([`crate::driver`]'s `EpochCore`), S3 the hook, S4 the tap. No state
//! is shared, so every mutation happens in the same order as the serial
//! staged schedule — the channels only move owned values forward. The
//! hook observes epochs in strict order on S3 (obs(t) cannot overtake
//! obs(t-1) in a FIFO channel), the tap appends in strict order on S4,
//! and the ingest stage blocks on actions(t-1) before issuing orders for
//! t+1, which pins the control lag to exactly the serial schedule's.
//! Thread scheduling can change only *when* a stage runs, never *what*
//! it computes. The golden corpus identity test and the pipelined chaos
//! matrix enforce this end to end.
//!
//! # Crash wind-down
//!
//! A crash is known when the run starts ([`crate::EpochDriver::crash_at`]),
//! so no runtime stop signal exists: the stage owning the crash point
//! simply exits after its last permitted operation, its channels
//! disconnect, and the neighbours drain in-flight earlier epochs until
//! their `recv` fails. The render stage therefore always records exactly
//! the epochs before the crash — the same durable prefix the serial
//! executor leaves.
//!
//! This module belongs to the **timing** determinism tier: stage workers
//! read the thread-CPU clock for per-stage spans when (and only when) a
//! timer is installed; nothing clock-derived reaches a checksummed
//! artifact.

use crate::driver::{EpochDriver, PoolStats, RunOutcome};
use crate::exec::thread_busy_ns;
use crate::handler::{execute_orders, SendOrder};
use crate::phase::{EpochPhase, PipelineStage};
use crate::server::{
    ControlAction, CrashPoint, EpochInputsRecord, EpochObservation, EpochReport, FaultDeltas,
    ReplayInputs,
};
use craqr_engine::BatchPool;
use craqr_sensing::SensorResponse;
use std::sync::mpsc::{channel, sync_channel};

/// Dispatch orders for one epoch, issued on S2, executed on S1.
struct OrderMsg {
    epoch: u64,
    orders: Vec<SendOrder>,
}

/// One epoch's crowd-side outcome, drained on S1, ingested on S2.
struct DrainedBatch {
    epoch: u64,
    sent: u64,
    faults: FaultDeltas,
    responses: Vec<SensorResponse>,
    epoch_start: f64,
    epoch_end: f64,
}

/// One finished epoch's report + observation, S2 → S3.
struct ObsMsg {
    epoch: u64,
    report: EpochReport,
    /// Raw (pre-corruption) responses for the tap; `None` when no tap
    /// listens or a replay borrows them from the recorded inputs.
    raw: Option<Vec<SensorResponse>>,
    /// Built only when a hook is installed.
    obs: Option<EpochObservation>,
}

/// The hook's actions for one epoch, S3 → S2 (applied next slot).
struct ActMsg {
    epoch: u64,
    actions: Vec<ControlAction>,
}

/// One epoch's record for the tap, S3 → S4.
struct TapMsg {
    epoch: u64,
    report: EpochReport,
    raw: Option<Vec<SensorResponse>>,
    actions: Vec<ControlAction>,
}

/// Per-stage span recorder: thread-CPU laps tagged with (slot, phase),
/// replayed through [`crate::PhaseTimer::observe_stage`] on the driver
/// thread after the workers join. Inert (zero clock reads) untimed.
struct StageClock {
    last: Option<u64>,
    spans: SpanList,
}

/// One stage's recorded spans: `(slot, phase, busy ns)` in lap order.
type SpanList = Vec<(u64, EpochPhase, u64)>;

impl StageClock {
    fn new(timed: bool) -> Self {
        Self { last: timed.then(thread_busy_ns), spans: Vec::new() }
    }

    /// Re-anchors after a blocking receive so queue-wait cost is not
    /// attributed to the next span.
    fn reset(&mut self) {
        if self.last.is_some() {
            self.last = Some(thread_busy_ns());
        }
    }

    fn lap(&mut self, slot: u64, phase: EpochPhase) {
        if let Some(last) = self.last {
            let now = thread_busy_ns();
            self.spans.push((slot, phase, now.saturating_sub(last)));
            self.last = Some(now);
        }
    }
}

/// Channel depth for the epoch-data channels: a stage can run at most
/// this many epochs ahead of its consumer before blocking.
const STAGE_DEPTH: usize = 2;

/// Runs the staged schedule across four worker threads. Byte-identical
/// to [`EpochDriver::run`] — see the module docs for the argument.
pub(crate) fn run_pipelined(driver: EpochDriver<'_>, epochs: u64) -> RunOutcome {
    run_pipelined_inner(driver, epochs, None)
}

/// The replayed sibling: recorded inputs stand in for the crowd.
pub(crate) fn run_replayed_pipelined(
    driver: EpochDriver<'_>,
    inputs: &[ReplayInputs<'_>],
) -> RunOutcome {
    run_pipelined_inner(driver, inputs.len() as u64, Some(inputs))
}

fn run_pipelined_inner(
    driver: EpochDriver<'_>,
    n: u64,
    replay: Option<&[ReplayInputs<'_>]>,
) -> RunOutcome {
    let EpochDriver { server, hook, tap, timer, prologue, crash } = driver;
    let in_loop = crash.filter(|(_, p)| *p != CrashPoint::MidLogAppend);
    let crashes = in_loop.filter(|(slot, _)| *slot < n);
    let detached = replay.is_some();
    let has_hook = hook.is_some();
    let has_tap = tap.is_some();
    let timed = timer.is_some();
    let (crowd, epoch_counter, core) = crate::driver::split(server);
    let base = *epoch_counter;
    let dt = core.config.planner.batch_duration / core.config.mobility_substeps as f64;
    let steps = core.config.mobility_substeps;
    if n == 0 {
        return RunOutcome { completed: true, ..Default::default() };
    }
    let mut prologue = prologue;

    let (order_tx, order_rx) = sync_channel::<OrderMsg>(STAGE_DEPTH);
    let (batch_tx, batch_rx) = sync_channel::<DrainedBatch>(STAGE_DEPTH);
    let (obs_tx, obs_rx) = sync_channel::<ObsMsg>(STAGE_DEPTH);
    let (act_tx, act_rx) = sync_channel::<ActMsg>(STAGE_DEPTH);
    let (tap_tx, tap_rx) = sync_channel::<TapMsg>(STAGE_DEPTH);
    // Buffer-return channels flow upstream, unbounded (returns never
    // block; depth is naturally capped by the data channels).
    let (pool_tx, pool_rx) = channel::<Vec<SensorResponse>>();
    let (raw_tx, raw_rx) = channel::<Vec<SensorResponse>>();

    let (s1, s2, s3, s4) = std::thread::scope(|s| {
        // ── S1: drain — owns the crowd ────────────────────────────────
        let drain = s.spawn(move || {
            let crowd = crowd;
            let mut pool: BatchPool<SensorResponse> = BatchPool::default();
            let mut stats = PoolStats::default();
            let mut clock = StageClock::new(timed);
            for t in 0..n {
                let Ok(order) = order_rx.recv() else { break };
                clock.reset();
                debug_assert_eq!(order.epoch, t, "orders arrive in slot order");
                if let Some(p) = &mut prologue {
                    p(t, crowd);
                }
                let epoch_start = crowd.now();
                let sent = match replay {
                    None => execute_orders(crowd, &order.orders),
                    Some(inputs) => inputs[t as usize].sent,
                };
                clock.lap(t, EpochPhase::Dispatch);
                if in_loop == Some((t, CrashPoint::PostDispatch)) {
                    break;
                }
                let faults_before = FaultDeltas {
                    dropped: crowd.responses_dropped(),
                    delayed: crowd.responses_delayed(),
                    duplicated: crowd.responses_duplicated(),
                };
                for _ in 0..steps {
                    crowd.step(dt);
                }
                let faults = match replay {
                    None => FaultDeltas {
                        dropped: crowd.responses_dropped() - faults_before.dropped,
                        delayed: crowd.responses_delayed() - faults_before.delayed,
                        duplicated: crowd.responses_duplicated() - faults_before.duplicated,
                    },
                    Some(inputs) => inputs[t as usize].faults,
                };
                while let Ok(buf) = pool_rx.try_recv() {
                    pool.put(buf);
                }
                if pool.retained() > 0 {
                    stats.recycled += 1;
                } else {
                    stats.fresh_allocations += 1;
                }
                let mut buf = pool.take();
                let responses = match replay {
                    None => crowd.drain_responses_reusing(buf),
                    Some(inputs) => {
                        buf.clear();
                        buf.extend_from_slice(inputs[t as usize].responses);
                        buf
                    }
                };
                let epoch_end = crowd.now();
                clock.lap(t, EpochPhase::Drain);
                if in_loop == Some((t, CrashPoint::PostDrain)) {
                    break;
                }
                let msg =
                    DrainedBatch { epoch: t, sent, faults, responses, epoch_start, epoch_end };
                if batch_tx.send(msg).is_err() {
                    break;
                }
            }
            // Wind-down: S2 returns one spent buffer per absorbed batch
            // and drops its sender on exit, so a *blocking* drain parks
            // every in-flight buffer back in the pool before counting
            // what rests. Dropping our batch sender first lets S2 see
            // the disconnect and exit (no recv cycle: S2's own exit
            // never waits on this stage).
            drop(batch_tx);
            while let Ok(buf) = pool_rx.recv() {
                pool.put(buf);
            }
            (stats, pool.retained(), clock.spans)
        });

        // ── S2: ingest — owns the planner half ────────────────────────
        let ingest = s.spawn(move || {
            let mut core = core;
            let mut raw_pool: BatchPool<SensorResponse> = BatchPool::default();
            let mut stats = PoolStats::default();
            let mut clock = StageClock::new(timed);
            let mut issued0 = core.issue(detached);
            clock.lap(0, EpochPhase::Dispatch);
            let _ =
                order_tx.send(OrderMsg { epoch: 0, orders: std::mem::take(&mut issued0.orders) });
            let mut pending = Some(issued0);
            let mut clean_exit = true;
            for t in 0..n {
                let Ok(batch) = batch_rx.recv() else {
                    clean_exit = false;
                    break;
                };
                clock.reset();
                debug_assert_eq!(batch.epoch, t, "batches arrive in slot order");
                let issued = pending.take().expect("orders issued by the previous slot");
                let mut dispatch = issued.stats;
                dispatch.sent = batch.sent;
                core.handler.record_sent(batch.sent);
                // Epoch t-1's actions land here — after epoch t's orders
                // already executed, before epoch t+1's are issued.
                let stale_actions = if t >= 1 {
                    let Ok(act) = act_rx.recv() else {
                        clean_exit = false;
                        break;
                    };
                    debug_assert_eq!(act.epoch, t - 1, "actions arrive one slot behind");
                    core.apply_actions(&act.actions)
                } else {
                    0
                };
                core.observe_drained(&batch.responses);
                clock.lap(t, EpochPhase::Ingest);
                if t + 1 < n {
                    let mut next = core.issue(detached);
                    clock.lap(t, EpochPhase::Dispatch);
                    let _ = order_tx
                        .send(OrderMsg { epoch: t + 1, orders: std::mem::take(&mut next.orders) });
                    pending = Some(next);
                }
                // Snapshot raw responses for the tap before corruption;
                // replays borrow from the recorded inputs on S4 instead.
                let raw = if has_tap && replay.is_none() {
                    while let Ok(buf) = raw_rx.try_recv() {
                        raw_pool.put(buf);
                    }
                    if raw_pool.retained() > 0 {
                        stats.recycled += 1;
                    } else {
                        stats.fresh_allocations += 1;
                    }
                    let mut buf = raw_pool.take();
                    buf.extend_from_slice(&batch.responses);
                    Some(buf)
                } else {
                    None
                };
                let n_responses = batch.responses.len();
                let (ing, spent) = core.absorb(batch.responses);
                let _ = pool_tx.send(spent);
                let meta = crate::driver::SlotMeta {
                    epoch: base + t,
                    now: batch.epoch_end,
                    dispatch,
                    responses: n_responses,
                    faults: batch.faults,
                    charges: issued.charges,
                    stale_actions,
                };
                let (report, fresh) = core.finish_report(meta, ing);
                let obs = core.observe_and_bank(
                    &report,
                    fresh,
                    has_hook,
                    batch.epoch_start,
                    batch.epoch_end,
                );
                clock.lap(t, EpochPhase::Ingest);
                if obs_tx.send(ObsMsg { epoch: t, report, raw, obs }).is_err() {
                    clean_exit = false;
                    break;
                }
            }
            // The final epoch's actions apply only on normal completion —
            // a crashed run abandons them exactly like the serial
            // executor.
            if clean_exit {
                if let Ok(act) = act_rx.recv() {
                    debug_assert_eq!(act.epoch, n - 1);
                    core.apply_actions(&act.actions);
                }
            }
            // Wind-down mirror of S1: drop the observation sender so the
            // control and render stages drain out and disconnect the raw
            // return channel, then park every raw buffer still in flight.
            drop(obs_tx);
            while let Ok(buf) = raw_rx.recv() {
                raw_pool.put(buf);
            }
            (stats, raw_pool.retained(), clock.spans)
        });

        // ── S3: control — owns the hook ───────────────────────────────
        let control = s.spawn(move || {
            let mut hook = hook;
            let mut clock = StageClock::new(timed);
            while let Ok(msg) = obs_rx.recv() {
                clock.reset();
                let t = msg.epoch;
                let actions = match (&mut hook, &msg.obs) {
                    (Some(h), Some(obs)) => h.on_epoch(obs),
                    _ => Vec::new(),
                };
                clock.lap(t, EpochPhase::Control);
                if in_loop == Some((t, CrashPoint::PostControl)) {
                    // Die before anything downstream observes epoch t:
                    // no actions back, no record forward.
                    break;
                }
                let _ = act_tx.send(ActMsg { epoch: t, actions: actions.clone() });
                let msg = TapMsg { epoch: t, report: msg.report, raw: msg.raw, actions };
                if tap_tx.send(msg).is_err() {
                    break;
                }
            }
            clock.spans
        });

        // ── S4: render — owns the tap ─────────────────────────────────
        let render = s.spawn(move || {
            let mut tap = tap;
            let mut reports = Vec::with_capacity(n as usize);
            let mut clock = StageClock::new(timed);
            while let Ok(msg) = tap_rx.recv() {
                clock.reset();
                if let Some(t) = tap.as_deref_mut() {
                    let raw: &[SensorResponse] = match (replay, &msg.raw) {
                        (Some(inputs), _) => inputs[msg.epoch as usize].responses,
                        (None, Some(buf)) => buf,
                        (None, None) => &[],
                    };
                    t.on_epoch(&EpochInputsRecord {
                        report: &msg.report,
                        responses: raw,
                        actions: &msg.actions,
                    });
                }
                if let Some(buf) = msg.raw {
                    let _ = raw_tx.send(buf);
                }
                clock.lap(msg.epoch, EpochPhase::LogAppend);
                reports.push(msg.report);
            }
            (reports, clock.spans)
        });

        (
            drain.join().expect("drain stage"),
            ingest.join().expect("ingest stage"),
            control.join().expect("control stage"),
            render.join().expect("render stage"),
        )
    });

    let (drain_stats, drain_pooled, drain_spans) = s1;
    let (ingest_stats, ingest_pooled, ingest_spans) = s2;
    let control_spans = s3;
    let (reports, render_spans) = s4;

    // A restarted process observes the crashed slot's counter advance,
    // exactly like the serial executor.
    *epoch_counter = base + crashes.map_or(n, |(slot, _)| slot + 1);

    if let Some(timer) = timer {
        // Replay the stage-local spans in (slot, stage) order on the
        // driver thread — stage-aware timers see the same stream the
        // serial staged run produces.
        let lists: [(PipelineStage, &SpanList); 4] = [
            (PipelineStage::Drain, &drain_spans),
            (PipelineStage::Ingest, &ingest_spans),
            (PipelineStage::Control, &control_spans),
            (PipelineStage::Render, &render_spans),
        ];
        let mut idx = [0usize; 4];
        for t in 0..n {
            for (i, (stage, spans)) in lists.iter().enumerate() {
                while idx[i] < spans.len() && spans[idx[i]].0 == t {
                    let (slot, phase, ns) = spans[idx[i]];
                    timer.observe_stage(*stage, slot, phase, ns);
                    idx[i] += 1;
                }
            }
        }
    }

    RunOutcome {
        reports,
        completed: crashes.is_none(),
        pool: PoolStats {
            fresh_allocations: drain_stats.fresh_allocations + ingest_stats.fresh_allocations,
            recycled: drain_stats.recycled + ingest_stats.recycled,
            pooled: drain_pooled + ingest_pooled,
        },
    }
}

#[cfg(test)]
mod tests {
    use crate::server::{CraqrServer, ServerConfig};
    use craqr_geom::Rect;
    use craqr_sensing::{
        fields::ConstantField, AttrValue, Crowd, CrowdConfig, Mobility, Placement,
        PopulationConfig, RainFront,
    };

    fn server(size: usize) -> CraqrServer {
        let crowd = Crowd::new(CrowdConfig {
            region: Rect::with_size(4.0, 4.0),
            population: PopulationConfig {
                size,
                placement: Placement::Uniform,
                mobility: Mobility::RandomWalk { sigma: 0.2 },
                human_fraction: 0.0,
            },
            seed: 11,
        });
        let mut s = CraqrServer::new(crowd, ServerConfig::default());
        s.register_attribute("rain", true, Box::new(RainFront::new(2.0, 0.0, 2.0)));
        s.register_attribute("temp", false, Box::new(ConstantField(AttrValue::Float(21.0))));
        s.submit("ACQUIRE rain FROM RECT(0,0,2,2) RATE 1").unwrap();
        s.submit("ACQUIRE temp FROM RECT(1,1,3,3) RATE 0.5").unwrap();
        s
    }

    /// Zeroes the timing-tier `busy_ns` fields — they are thread-CPU
    /// measurements, excluded from every checksummed artifact, and the
    /// only report bytes allowed to differ across executors.
    fn untimed(mut reports: Vec<crate::server::EpochReport>) -> Vec<crate::server::EpochReport> {
        for r in &mut reports {
            for s in &mut r.exec.shards {
                s.busy_ns = 0;
            }
        }
        reports
    }

    #[test]
    fn pipelined_reports_equal_serial_reports() {
        let mut serial = server(400);
        let mut piped = server(400);
        let want = untimed(serial.driver().run(12).reports);
        let got = untimed(piped.driver().run_pipelined(12).reports);
        assert_eq!(want, got, "pipelined run diverged from the serial staged schedule");
        assert_eq!(serial.epochs(), piped.epochs());
        assert!((serial.now() - piped.now()).abs() < 1e-12);
    }

    #[test]
    fn pipelined_pool_reaches_allocation_steady_state() {
        // Once the bounded channels are primed, every response batch the
        // drain stage fills must come back through the return channel:
        // fresh allocations are a function of the channel depth, not of
        // the horizon.
        // A buffer not in the pool is in the batch channel (≤ depth) or
        // in the ingest stage's hands (1), so fresh allocations can never
        // exceed depth + 2 — no matter how long the horizon runs.
        let cap = super::STAGE_DEPTH as u64 + 2;
        let long = server(400).driver().run_pipelined(48);
        assert!(long.pool.fresh_allocations > 0, "the first epochs must allocate");
        assert!(
            long.pool.fresh_allocations <= cap,
            "allocations must not scale with the horizon: {:?} (cap {cap})",
            long.pool
        );
        assert!(
            long.pool.recycled >= 48 - cap,
            "every steady-state epoch recycles: {:?}",
            long.pool
        );
        // The blocking wind-down drain parks every buffer ever allocated
        // back in a pool — none leak into the closed channels.
        assert_eq!(
            long.pooled_buffers() as u64,
            long.pool.fresh_allocations,
            "all allocated buffers come to rest: {:?}",
            long.pool
        );
    }
}
