//! Multi-tenant budget pools and admission control.
//!
//! The paper's acquisition server arbitrates *one* crowd across many
//! concurrent queries — but those queries have owners, and owners pay.
//! This module makes ownership first-class: every standing query belongs
//! to a [`TenantId`], every tenant owns a [`BudgetPool`] (acquisition
//! requests per epoch), and the [`TenantRegistry`] enforces two
//! invariants the single-owner server could not express:
//!
//! 1. **Admission control** — a new query's estimated demand is checked
//!    against its tenant's remaining pool *before* planning; an
//!    over-committing query is rejected with a structured
//!    [`AdmissionDecision`] instead of silently starving the tenant's
//!    existing queries (or everyone else's).
//! 2. **Epoch conservation** — during dispatch every (cell, attribute)
//!    chain's requests are charged to the tenants whose queries consume
//!    the chain (proportional to their requested rates), and a tenant's
//!    charges in one epoch never exceed its pool capacity: dispatch
//!    throttles rather than overdraws.
//!
//! Everything here is deterministic in the registration/submission order,
//! so tenant accounting inherits the executor's bit-identity contract
//! (serial == any `Sharded(n)`, live == replayed) for free.

use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a registered tenant (registration order, dense from 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The implicit owner of queries submitted without a tenant — the
    /// back-compat single-owner world. Servers with no registered
    /// tenants never check or charge it.
    pub const DEFAULT: TenantId = TenantId(0);
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// One tenant's acquisition budget pool: the requests per epoch its
/// queries may collectively draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetPool {
    /// Pool capacity (requests per epoch).
    pub capacity: f64,
}

impl BudgetPool {
    /// Creates a pool.
    ///
    /// # Panics
    /// Panics on a non-finite or non-positive capacity.
    #[track_caller]
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "pool capacity must be finite and > 0, got {capacity}"
        );
        Self { capacity }
    }
}

/// The structured outcome of one admission check — recorded whether the
/// query was admitted or rejected, so tenant disputes are auditable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionDecision {
    /// The tenant that submitted the query.
    pub tenant: TenantId,
    /// Submission order across the server (0-based, counts rejected
    /// submissions too) — the audit key the run log records.
    pub submission: u32,
    /// The query's estimated steady-state demand (requests/epoch):
    /// `rate × clipped area × epoch minutes`.
    pub estimated_demand: f64,
    /// Demand already committed by the tenant's admitted queries.
    pub committed_before: f64,
    /// The tenant's pool capacity (requests/epoch).
    pub capacity: f64,
    /// `true`: admitted (the demand is now committed). `false`: rejected
    /// — the pool cannot cover it.
    pub admitted: bool,
}

impl fmt::Display for AdmissionDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} submission {}: demand {:.4} over committed {:.4} of capacity {:.4} → {}",
            self.tenant,
            self.submission,
            self.estimated_demand,
            self.committed_before,
            self.capacity,
            if self.admitted { "admitted" } else { "rejected" },
        )
    }
}

/// One tenant's live accounting state.
#[derive(Debug, Clone, PartialEq)]
struct TenantAccount {
    name: String,
    pool: BudgetPool,
    /// Estimated demand committed by admitted queries (requests/epoch).
    committed: f64,
    /// Queries admitted / rejected so far.
    admitted: u32,
    rejected: u32,
    /// Requests charged in the current epoch.
    spent_epoch: f64,
    /// Requests charged over the whole run.
    spent_total: f64,
    /// The largest single-epoch charge seen (the conservation witness:
    /// it must never exceed `pool.capacity`).
    peak_epoch: f64,
}

/// Per-tenant roll-up for reports.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSummary {
    /// The tenant.
    pub tenant: TenantId,
    /// Registered name.
    pub name: String,
    /// Pool capacity (requests/epoch).
    pub capacity: f64,
    /// Queries admitted.
    pub admitted: u32,
    /// Queries rejected at admission.
    pub rejected: u32,
    /// Committed estimated demand (requests/epoch).
    pub committed: f64,
    /// Requests charged over the run.
    pub charged_total: f64,
    /// Largest single-epoch charge (≤ capacity by construction).
    pub peak_epoch_charge: f64,
}

/// The per-tenant budget pool registry: admission control at submit time,
/// conservation-enforced charging at dispatch time.
///
/// Owned by [`CraqrServer`](crate::CraqrServer); a server with no
/// registry behaves exactly like the pre-tenant single-owner server.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantRegistry {
    accounts: BTreeMap<TenantId, TenantAccount>,
    decisions: Vec<AdmissionDecision>,
}

impl TenantRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tenant with its budget pool, returning its id
    /// (registration order, dense from 0).
    pub fn register(&mut self, name: &str, pool: BudgetPool) -> TenantId {
        let id = TenantId(self.accounts.len() as u32);
        self.accounts.insert(
            id,
            TenantAccount {
                name: name.to_string(),
                pool,
                committed: 0.0,
                admitted: 0,
                rejected: 0,
                spent_epoch: 0.0,
                spent_total: 0.0,
                peak_epoch: 0.0,
            },
        );
        id
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// `true` when no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// `true` when `tenant` is registered.
    pub fn contains(&self, tenant: TenantId) -> bool {
        self.accounts.contains_key(&tenant)
    }

    /// A tenant's pool, if registered.
    pub fn pool_of(&self, tenant: TenantId) -> Option<BudgetPool> {
        self.accounts.get(&tenant).map(|a| a.pool)
    }

    /// Runs the admission check for a query with `estimated_demand`
    /// (requests/epoch) from `tenant`. Admitting commits the demand; the
    /// decision is recorded either way.
    ///
    /// # Panics
    /// Panics on an unregistered tenant (the server rejects that earlier
    /// with a proper error) or a non-finite demand.
    #[track_caller]
    pub fn admit(&mut self, tenant: TenantId, estimated_demand: f64) -> AdmissionDecision {
        assert!(
            estimated_demand.is_finite() && estimated_demand >= 0.0,
            "estimated demand must be >= 0, got {estimated_demand}"
        );
        let submission = self.decisions.len() as u32;
        let account = self.accounts.get_mut(&tenant).expect("tenant registered");
        let admitted = account.committed + estimated_demand <= account.pool.capacity + 1e-9;
        let decision = AdmissionDecision {
            tenant,
            submission,
            estimated_demand,
            committed_before: account.committed,
            capacity: account.pool.capacity,
            admitted,
        };
        if admitted {
            account.committed += estimated_demand;
            account.admitted += 1;
        } else {
            account.rejected += 1;
        }
        self.decisions.push(decision);
        decision
    }

    /// Rolls back the most recent *admitted* decision — used when a query
    /// passes admission but then fails planning, so the pool is not left
    /// committed to a query that never materialized. The decision stays
    /// in the audit log, flipped to rejected.
    pub fn rollback_last_admission(&mut self) {
        let Some(last) = self.decisions.last_mut() else { return };
        if !last.admitted {
            return;
        }
        last.admitted = false;
        let account = self.accounts.get_mut(&last.tenant).expect("tenant registered");
        account.committed -= last.estimated_demand;
        account.admitted -= 1;
        account.rejected += 1;
    }

    /// Every admission decision so far, in submission order.
    pub fn decisions(&self) -> &[AdmissionDecision] {
        &self.decisions
    }

    /// Releases `demand` of a tenant's committed pool — called when an
    /// admitted query is deleted, so its capacity can be re-admitted.
    pub fn release(&mut self, tenant: TenantId, demand: f64) {
        if let Some(account) = self.accounts.get_mut(&tenant) {
            account.committed = (account.committed - demand).max(0.0);
        }
    }

    /// Opens a new charging epoch: per-epoch spend resets to zero.
    pub fn begin_epoch(&mut self) {
        for account in self.accounts.values_mut() {
            account.spent_epoch = 0.0;
        }
    }

    /// The largest request count `n ≤ wanted` a chain with the given
    /// tenant `shares` (fractions summing to 1) can dispatch without any
    /// tenant overdrawing its pool this epoch.
    pub fn allow(&self, shares: &[(TenantId, f64)], wanted: usize) -> usize {
        let mut allowed = wanted as f64;
        for (tenant, share) in shares {
            if *share <= 0.0 {
                continue;
            }
            let Some(account) = self.accounts.get(tenant) else { continue };
            let headroom = (account.pool.capacity - account.spent_epoch).max(0.0);
            allowed = allowed.min(headroom / share);
        }
        // The epsilon forgives accumulated float dust on an exactly-full
        // pool; the floor keeps the charge under capacity regardless.
        (allowed + 1e-9).floor().min(wanted as f64) as usize
    }

    /// Charges `requests` dispatched by a chain to its owning tenants,
    /// split by `shares`. Call after [`TenantRegistry::allow`] clamped
    /// the count, so conservation holds by construction.
    pub fn charge(&mut self, shares: &[(TenantId, f64)], requests: usize) {
        if requests == 0 {
            return;
        }
        for (tenant, share) in shares {
            let Some(account) = self.accounts.get_mut(tenant) else { continue };
            let amount = requests as f64 * share;
            account.spent_epoch += amount;
            account.spent_total += amount;
            if account.spent_epoch > account.peak_epoch {
                account.peak_epoch = account.spent_epoch;
            }
        }
    }

    /// The current epoch's charges, ascending by tenant (zero-charge
    /// tenants included — an auditable "nothing drawn" is information).
    pub fn epoch_charges(&self) -> Vec<(TenantId, f64)> {
        self.accounts.iter().map(|(id, a)| (*id, a.spent_epoch)).collect()
    }

    /// Per-tenant roll-ups, ascending by tenant.
    pub fn summaries(&self) -> Vec<TenantSummary> {
        self.accounts
            .iter()
            .map(|(id, a)| TenantSummary {
                tenant: *id,
                name: a.name.clone(),
                capacity: a.pool.capacity,
                admitted: a.admitted,
                rejected: a.rejected,
                committed: a.committed,
                charged_total: a.spent_total,
                peak_epoch_charge: a.peak_epoch,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_assigns_dense_ids() {
        let mut r = TenantRegistry::new();
        let a = r.register("alice", BudgetPool::new(100.0));
        let b = r.register("bob", BudgetPool::new(50.0));
        assert_eq!((a, b), (TenantId(0), TenantId(1)));
        assert_eq!(r.len(), 2);
        assert_eq!(r.pool_of(b).unwrap().capacity, 50.0);
        assert!(!r.contains(TenantId(7)));
    }

    #[test]
    fn admission_commits_until_the_pool_is_full() {
        let mut r = TenantRegistry::new();
        let t = r.register("alice", BudgetPool::new(100.0));
        assert!(r.admit(t, 60.0).admitted);
        assert!(r.admit(t, 40.0).admitted, "exactly-full pool admits");
        let rejected = r.admit(t, 0.5);
        assert!(!rejected.admitted);
        assert_eq!(rejected.committed_before, 100.0);
        assert_eq!(rejected.submission, 2);
        let s = &r.summaries()[0];
        assert_eq!((s.admitted, s.rejected), (2, 1));
        assert_eq!(s.committed, 100.0);
    }

    #[test]
    fn rollback_releases_the_commitment_and_flips_the_audit_entry() {
        let mut r = TenantRegistry::new();
        let t = r.register("alice", BudgetPool::new(10.0));
        r.admit(t, 8.0);
        r.rollback_last_admission();
        assert_eq!(r.summaries()[0].committed, 0.0);
        assert!(!r.decisions()[0].admitted, "audit entry flipped, not erased");
        assert!(r.admit(t, 9.0).admitted, "capacity released");
        // Rolling back a rejection is a no-op.
        let _ = r.admit(t, 99.0);
        r.rollback_last_admission();
        assert_eq!(r.summaries()[0].committed, 9.0);
    }

    #[test]
    fn charging_is_conserved_under_allow() {
        let mut r = TenantRegistry::new();
        let a = r.register("alice", BudgetPool::new(10.0));
        let b = r.register("bob", BudgetPool::new(100.0));
        r.begin_epoch();
        let shares = vec![(a, 0.25), (b, 0.75)];
        // Alice's 10-request pool caps the chain at 40 requests.
        assert_eq!(r.allow(&shares, 1000), 40);
        r.charge(&shares, 40);
        assert_eq!(r.allow(&shares, 1000), 0, "alice is dry");
        let charges = r.epoch_charges();
        assert_eq!(charges, vec![(a, 10.0), (b, 30.0)]);
        // A fresh epoch resets the meter but not the totals.
        r.begin_epoch();
        assert_eq!(r.epoch_charges(), vec![(a, 0.0), (b, 0.0)]);
        assert_eq!(r.summaries()[0].charged_total, 10.0);
        assert_eq!(r.summaries()[0].peak_epoch_charge, 10.0);
    }

    #[test]
    fn allow_is_exact_on_single_tenant_chains() {
        let mut r = TenantRegistry::new();
        let t = r.register("solo", BudgetPool::new(7.0));
        r.begin_epoch();
        let shares = vec![(t, 1.0)];
        assert_eq!(r.allow(&shares, 5), 5);
        r.charge(&shares, 5);
        assert_eq!(r.allow(&shares, 5), 2);
        r.charge(&shares, 2);
        assert_eq!(r.allow(&shares, 5), 0);
        assert_eq!(r.epoch_charges(), vec![(t, 7.0)]);
    }
}
