//! Budgets and the `N_v`-driven budget tuner — Sections IV-A and V.

use serde::{Deserialize, Serialize};

/// The acquisition budget `β⟨j⟩(q,r)` for one (attribute, grid cell) pair:
/// "the number of acquisitional requests per attribute and per grid cell
/// that can be sent in a given duration of time".
///
/// The budget is a float so ±Δβ tuning is smooth; the handler converts it
/// to an integer request count per epoch with credit-carrying rounding, so
/// the *long-run* request rate equals the budget exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Budget {
    /// Requests per epoch.
    pub requests_per_epoch: f64,
    /// Carried fractional credit for rounding.
    credit: f64,
}

impl Budget {
    /// Creates a budget of `requests_per_epoch`.
    ///
    /// # Panics
    /// Panics on negative or non-finite budgets.
    #[track_caller]
    pub fn new(requests_per_epoch: f64) -> Self {
        assert!(
            requests_per_epoch.is_finite() && requests_per_epoch >= 0.0,
            "budget must be >= 0, got {requests_per_epoch}"
        );
        Self { requests_per_epoch, credit: 0.0 }
    }

    /// The integer number of requests to send this epoch; fractional parts
    /// accumulate as credit so the long-run average equals the budget.
    pub fn draw_requests(&mut self) -> usize {
        self.credit += self.requests_per_epoch;
        let n = self.credit.floor();
        self.credit -= n;
        n as usize
    }
}

/// Outcome of one tuning step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TuneOutcome {
    /// `N_v` under threshold: budget decreased (or already at the floor).
    Decreased,
    /// `N_v` over threshold: budget increased.
    Increased,
    /// `N_v` over threshold but the budget is capped — "the user is
    /// requested to either accept the feasible rate or pay more to obtain
    /// the required rate". The incentive extension reacts to this.
    Exhausted,
}

/// The Section V budget tuner: "if `N_v` exceeds the threshold, then the
/// budget `β⟨j⟩(q,r)` is increased by Δβ, otherwise it is decreased by the
/// same amount. If the budget cannot be increased beyond a limit, then the
/// user is requested to either accept the feasible rate or pay more."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetTuner {
    /// The `N_v` threshold (percent, 0–100).
    pub nv_threshold: f64,
    /// The step Δβ (requests per epoch).
    pub delta: f64,
    /// Budget floor (requests per epoch; keeps cells minimally probed so
    /// recovery can be detected).
    pub min_budget: f64,
    /// Budget cap (requests per epoch; the "limit" of the paper).
    pub max_budget: f64,
}

impl Default for BudgetTuner {
    fn default() -> Self {
        Self { nv_threshold: 10.0, delta: 2.0, min_budget: 1.0, max_budget: 200.0 }
    }
}

impl BudgetTuner {
    /// Applies one tuning step given the latest (smoothed) `N_v` percent.
    ///
    /// # Panics
    /// Panics when `nv_percent` is outside `[0, 100]`.
    #[track_caller]
    pub fn tune(&self, budget: &mut Budget, nv_percent: f64) -> TuneOutcome {
        assert!((0.0..=100.0).contains(&nv_percent), "N_v must be a percentage, got {nv_percent}");
        if nv_percent > self.nv_threshold {
            if budget.requests_per_epoch >= self.max_budget {
                budget.requests_per_epoch = self.max_budget;
                return TuneOutcome::Exhausted;
            }
            budget.requests_per_epoch =
                (budget.requests_per_epoch + self.delta).min(self.max_budget);
            TuneOutcome::Increased
        } else {
            budget.requests_per_epoch =
                (budget.requests_per_epoch - self.delta).max(self.min_budget);
            TuneOutcome::Decreased
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credit_rounding_preserves_mean() {
        let mut b = Budget::new(2.5);
        let total: usize = (0..1000).map(|_| b.draw_requests()).sum();
        assert_eq!(total, 2500);
    }

    #[test]
    fn integer_budget_is_exact() {
        let mut b = Budget::new(3.0);
        for _ in 0..10 {
            assert_eq!(b.draw_requests(), 3);
        }
    }

    #[test]
    fn zero_budget_sends_nothing() {
        let mut b = Budget::new(0.0);
        assert_eq!(b.draw_requests(), 0);
    }

    #[test]
    fn tuner_increases_on_violation() {
        let tuner = BudgetTuner::default();
        let mut b = Budget::new(10.0);
        let out = tuner.tune(&mut b, 50.0);
        assert_eq!(out, TuneOutcome::Increased);
        assert_eq!(b.requests_per_epoch, 12.0);
    }

    #[test]
    fn tuner_decreases_when_satisfied() {
        let tuner = BudgetTuner::default();
        let mut b = Budget::new(10.0);
        let out = tuner.tune(&mut b, 0.0);
        assert_eq!(out, TuneOutcome::Decreased);
        assert_eq!(b.requests_per_epoch, 8.0);
    }

    #[test]
    fn tuner_respects_floor_and_cap() {
        let tuner =
            BudgetTuner { min_budget: 1.0, max_budget: 12.0, delta: 5.0, nv_threshold: 10.0 };
        let mut b = Budget::new(2.0);
        tuner.tune(&mut b, 0.0);
        assert_eq!(b.requests_per_epoch, 1.0, "floor respected");
        let mut b = Budget::new(11.0);
        assert_eq!(tuner.tune(&mut b, 90.0), TuneOutcome::Increased);
        assert_eq!(b.requests_per_epoch, 12.0, "clamped to cap");
        assert_eq!(tuner.tune(&mut b, 90.0), TuneOutcome::Exhausted);
        assert_eq!(b.requests_per_epoch, 12.0);
    }

    #[test]
    fn tuner_converges_to_need() {
        // A fake environment: violations occur iff the budget is below 20.
        let tuner = BudgetTuner { delta: 1.0, ..Default::default() };
        let mut b = Budget::new(1.0);
        for _ in 0..100 {
            let nv = if b.requests_per_epoch < 20.0 { 50.0 } else { 0.0 };
            tuner.tune(&mut b, nv);
        }
        assert!((b.requests_per_epoch - 20.0).abs() <= 1.0, "β = {}", b.requests_per_epoch);
    }

    #[test]
    #[should_panic(expected = "percentage")]
    fn tuner_rejects_bad_nv() {
        let tuner = BudgetTuner::default();
        let mut b = Budget::new(1.0);
        tuner.tune(&mut b, 250.0);
    }
}
