//! The epoch-phase timing seam — the *timing* sibling of the control
//! ([`crate::ControlHook`]) and recording ([`crate::EpochTap`]) seams.
//!
//! # Why a seam, and why it is safe
//!
//! CrAQR's determinism contract forbids clocks from influencing anything
//! checksummed: a run must produce bit-identical reports, traces, and run
//! logs on every host. But an operable service still needs latency
//! telemetry — *where does an epoch spend its time?* The [`PhaseTimer`]
//! seam reconciles the two:
//!
//! - **Byte-inert when absent.** With no timer installed the epoch loop
//!   takes zero clock readings and executes the exact instruction stream
//!   of an uninstrumented build. Nothing is allocated, branched on a
//!   clock, or fed to an RNG.
//! - **Read-only when present.** An installed timer only *reads* the
//!   thread-CPU clock at phase boundaries ([`crate::exec::thread_busy_ns`])
//!   and hands the elapsed nanoseconds to the timer. No simulation state,
//!   RNG stream, or report field depends on the measured values, so every
//!   checksummed artifact is bit-identical with and without a timer — the
//!   same rule that keeps `busy_ns` out of report bodies.
//!
//! Measured durations are **thread-CPU time**, not wall time, so an epoch
//! descheduled on an oversubscribed host does not inflate its phases.
//!
//! The canonical implementation lives in `craqr-scenario`, which feeds a
//! `craqr-telemetry` histogram per phase; anything implementing the
//! one-method trait fits (a logger, a flamegraph feeder, a test probe).

/// One of the epoch loop's instrumented sections, in loop order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EpochPhase {
    /// Budget draws, tenant clamping/charging, request dispatch.
    Dispatch,
    /// Crowd mobility sub-steps, response drain, retry shortfall
    /// feedback.
    Drain,
    /// Error injection, mitigation, id assignment, the map + per-cell
    /// process phases, and the per-query merge.
    Ingest,
    /// Budget tuning plus the control hook's observation and the
    /// application of its actions.
    Control,
    /// The recording tap (run-log append happens inside it).
    LogAppend,
}

impl EpochPhase {
    /// Every phase, in loop order.
    pub const ALL: [EpochPhase; 5] = [
        EpochPhase::Dispatch,
        EpochPhase::Drain,
        EpochPhase::Ingest,
        EpochPhase::Control,
        EpochPhase::LogAppend,
    ];

    /// The metric-facing label (`phase="…"`).
    pub fn name(&self) -> &'static str {
        match self {
            EpochPhase::Dispatch => "dispatch",
            EpochPhase::Drain => "drain",
            EpochPhase::Ingest => "ingest",
            EpochPhase::Control => "control",
            EpochPhase::LogAppend => "log-append",
        }
    }
}

/// Observes per-phase thread-CPU durations for one epoch at a time.
///
/// Installed via the `timer` parameter of
/// [`crate::CraqrServer::run_epoch_instrumented`] (and its replayed
/// twin). The server calls [`PhaseTimer::observe`] once per
/// [`EpochPhase`] per epoch, in loop order, with the phase's elapsed
/// thread-CPU nanoseconds. Implementations must not feed the values back
/// into anything checksummed (see the module docs for the contract).
pub trait PhaseTimer {
    /// Records that `phase` took `nanos` thread-CPU nanoseconds this
    /// epoch.
    fn observe(&mut self, phase: EpochPhase, nanos: u64);
}
