//! The epoch-phase timing seam — the *timing* sibling of the control
//! ([`crate::ControlHook`]) and recording ([`crate::EpochTap`]) seams.
//!
//! # Why a seam, and why it is safe
//!
//! CrAQR's determinism contract forbids clocks from influencing anything
//! checksummed: a run must produce bit-identical reports, traces, and run
//! logs on every host. But an operable service still needs latency
//! telemetry — *where does an epoch spend its time?* The [`PhaseTimer`]
//! seam reconciles the two:
//!
//! - **Byte-inert when absent.** With no timer installed the epoch loop
//!   takes zero clock readings and executes the exact instruction stream
//!   of an uninstrumented build. Nothing is allocated, branched on a
//!   clock, or fed to an RNG.
//! - **Read-only when present.** An installed timer only *reads* the
//!   thread-CPU clock at phase boundaries ([`crate::exec::thread_busy_ns`])
//!   and hands the elapsed nanoseconds to the timer. No simulation state,
//!   RNG stream, or report field depends on the measured values, so every
//!   checksummed artifact is bit-identical with and without a timer — the
//!   same rule that keeps `busy_ns` out of report bodies.
//!
//! Measured durations are **thread-CPU time**, not wall time, so an epoch
//! descheduled on an oversubscribed host does not inflate its phases.
//!
//! The canonical implementation lives in `craqr-scenario`, which feeds a
//! `craqr-telemetry` histogram per phase; anything implementing the
//! one-method trait fits (a logger, a flamegraph feeder, a test probe).

/// One of the epoch loop's instrumented sections, in loop order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EpochPhase {
    /// Budget draws, tenant clamping/charging, request dispatch.
    Dispatch,
    /// Crowd mobility sub-steps, response drain, retry shortfall
    /// feedback.
    Drain,
    /// Error injection, mitigation, id assignment, the map + per-cell
    /// process phases, and the per-query merge.
    Ingest,
    /// Budget tuning plus the control hook's observation and the
    /// application of its actions.
    Control,
    /// The recording tap (run-log append happens inside it).
    LogAppend,
}

impl EpochPhase {
    /// Every phase, in loop order.
    pub const ALL: [EpochPhase; 5] = [
        EpochPhase::Dispatch,
        EpochPhase::Drain,
        EpochPhase::Ingest,
        EpochPhase::Control,
        EpochPhase::LogAppend,
    ];

    /// The metric-facing label (`phase="…"`).
    pub fn name(&self) -> &'static str {
        match self {
            EpochPhase::Dispatch => "dispatch",
            EpochPhase::Drain => "drain",
            EpochPhase::Ingest => "ingest",
            EpochPhase::Control => "control",
            EpochPhase::LogAppend => "log-append",
        }
    }
}

/// One of the pipelined executor's long-lived stage workers, in dataflow
/// order. Each [`EpochPhase`] is owned by exactly one stage:
///
/// - `Drain` owns the crowd: it executes dispatch orders
///   ([`EpochPhase::Dispatch`], the send half) and advances/drains the
///   world ([`EpochPhase::Drain`]).
/// - `Ingest` owns the handler/fabricator: it issues dispatch orders
///   ([`EpochPhase::Dispatch`], the budget-draw half) and runs error
///   injection through merge and tuning ([`EpochPhase::Ingest`]).
/// - `Control` owns the hook ([`EpochPhase::Control`]).
/// - `Render` owns the tap ([`EpochPhase::LogAppend`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineStage {
    /// Stage 1: crowd owner — order execution, mobility steps, drain.
    Drain,
    /// Stage 2: handler/fabricator owner — order issue, ingestion, tuning.
    Ingest,
    /// Stage 3: control-hook owner.
    Control,
    /// Stage 4: tap/render owner (run-log append).
    Render,
}

impl PipelineStage {
    /// Every stage, in dataflow order.
    pub const ALL: [PipelineStage; 4] = [
        PipelineStage::Drain,
        PipelineStage::Ingest,
        PipelineStage::Control,
        PipelineStage::Render,
    ];

    /// The metric-facing label (`stage="…"`).
    pub fn name(&self) -> &'static str {
        match self {
            PipelineStage::Drain => "drain",
            PipelineStage::Ingest => "ingest",
            PipelineStage::Control => "control",
            PipelineStage::Render => "render",
        }
    }
}

/// Observes per-phase thread-CPU durations for one epoch at a time.
///
/// Installed via [`crate::EpochDriver::timer`]. The driver calls
/// [`PhaseTimer::observe`] once per [`EpochPhase`] per epoch, in loop
/// order, with the phase's elapsed thread-CPU nanoseconds.
/// Implementations must not feed the values back into anything
/// checksummed (see the module docs for the contract).
/// `Send` is a supertrait because the pipelined executor runs the timer's
/// replay on the driver thread after stage workers join — every
/// implementor is plain data, so the bound costs nothing.
pub trait PhaseTimer: Send {
    /// Records that `phase` took `nanos` thread-CPU nanoseconds this
    /// epoch.
    fn observe(&mut self, phase: EpochPhase, nanos: u64);

    /// Pipelined-executor variant of [`PhaseTimer::observe`]: the same
    /// span, attributed to the stage worker that ran it, tagged with the
    /// epoch slot it belonged to. Stages record spans thread-locally and
    /// the driver replays them through this method after the workers
    /// join, in `(slot, stage)` order. The default forwards to `observe`,
    /// so phase-only timers keep working unchanged; stage-aware timers
    /// (the pipeline bench's critical-path model, per-stage telemetry)
    /// override it for the extra dimensions.
    fn observe_stage(&mut self, _stage: PipelineStage, _slot: u64, phase: EpochPhase, nanos: u64) {
        self.observe(phase, nanos);
    }
}
