//! The sharded epoch executor.
//!
//! CrAQR's per-cell topologies share nothing: each `(cell, attribute)`
//! chain owns its operators, its sinks, and its RNG streams (derived from
//! the planner's root seed, never from a shared mutable RNG). The *process*
//! phase of an epoch is therefore embarrassingly parallel, and this module
//! supplies the machinery to exploit that:
//!
//! - [`ExecMode`]: the execution knob on
//!   [`crate::server::ServerConfig`] — [`ExecMode::Serial`] is the
//!   reference implementation, [`ExecMode::Sharded`] fans the chains out
//!   over a scoped worker pool.
//! - [`shard_of`]: the deterministic chain→shard assignment (sorted
//!   keys, round-robin) the executor applies.
//! - [`ShardIngest`] / [`IngestReport`]: per-shard statistics merged
//!   deterministically (ascending shard index) after every epoch.
//!
//! # Determinism contract
//!
//! For any fixed root seed, `Serial` and `Sharded(n)` produce **bit
//! identical** outputs for every query, every epoch, and every budget
//! decision, for every `n ≥ 1`:
//!
//! - chains only touch chain-local state, so scheduling cannot reorder
//!   any chain's RNG draws;
//! - the map phase (tuple → chain routing) happens before workers start;
//! - per-shard results merge in shard order, and downstream consumers
//!   (per-query `U`-merges, budget tuning) iterate chains in sorted key
//!   order exactly as the serial path does.

use serde::{Deserialize, Serialize};

/// How the server executes the per-cell process phase of an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecMode {
    /// Run every chain on the calling thread, in sorted key order — the
    /// reference implementation.
    #[default]
    Serial,
    /// Partition chains into `n` shards (deterministic round-robin over
    /// sorted keys) and run each shard on its own scoped worker thread.
    ///
    /// `Sharded(1)` is the serial schedule on a worker thread — useful for
    /// isolating thread-spawn overhead in benchmarks.
    Sharded(usize),
}

impl ExecMode {
    /// Number of shards this mode runs (`1` for serial).
    ///
    /// # Panics
    /// Panics on `Sharded(0)`, which is meaningless.
    #[track_caller]
    pub fn shards(&self) -> usize {
        match self {
            ExecMode::Serial => 1,
            ExecMode::Sharded(n) => {
                assert!(*n > 0, "Sharded(0) has no workers to run on");
                *n
            }
        }
    }
}

/// Nanoseconds of CPU time consumed by the *calling thread* so far.
///
/// Shard busy-times are measured with this clock rather than wall time so
/// they stay meaningful on oversubscribed hosts: a worker descheduled
/// while a sibling shard runs accrues no busy time. On Linux this reads
/// `CLOCK_THREAD_CPUTIME_ID`; elsewhere it falls back to a process-wide
/// monotonic clock (still usable, but contention-sensitive).
pub fn thread_busy_ns() -> u64 {
    // 64-bit Linux only: the hand-rolled timespec layout below matches
    // glibc/musl's {i64, i64} there; 32-bit targets have 32-bit
    // `time_t`/`long` and take the fallback instead.
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    {
        #[repr(C)]
        struct Timespec {
            tv_sec: i64,
            tv_nsec: i64,
        }
        extern "C" {
            fn clock_gettime(clock_id: i32, tp: *mut Timespec) -> i32;
        }
        const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
        let mut ts = Timespec { tv_sec: 0, tv_nsec: 0 };
        // SAFETY: clock_gettime writes a timespec through a valid pointer;
        // CLOCK_THREAD_CPUTIME_ID is supported on every Linux ≥ 2.6.12.
        if unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) } == 0 {
            return ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64;
        }
    }
    use std::time::Instant;
    // Monotonic fallback anchored at first use.
    static START: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Nanoseconds on a cheap monotonic clock, for high-frequency callers.
///
/// The engine's per-node busy clock fires twice per operator batch, and
/// `CLOCK_THREAD_CPUTIME_ID` is a real syscall (hundreds of ns) while
/// `CLOCK_MONOTONIC` goes through the vDSO (tens of ns). Inside one
/// shard's batch loop the thread never blocks, so wall time per batch is
/// the same signal as CPU time at a fraction of the measurement cost —
/// that is what keeps full instrumentation under the E16 overhead gate.
/// Use [`thread_busy_ns`] instead for coarse spans that can straddle a
/// descheduling (whole-shard busy, epoch phases).
pub fn fast_monotonic_ns() -> u64 {
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    {
        #[repr(C)]
        struct Timespec {
            tv_sec: i64,
            tv_nsec: i64,
        }
        extern "C" {
            fn clock_gettime(clock_id: i32, tp: *mut Timespec) -> i32;
        }
        const CLOCK_MONOTONIC: i32 = 1;
        let mut ts = Timespec { tv_sec: 0, tv_nsec: 0 };
        // SAFETY: clock_gettime writes a timespec through a valid pointer;
        // CLOCK_MONOTONIC is supported on every Linux.
        if unsafe { clock_gettime(CLOCK_MONOTONIC, &mut ts) } == 0 {
            return ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64;
        }
    }
    use std::time::Instant;
    static START: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// The shard an item at sorted position `index` belongs to.
///
/// Round-robin keeps neighbouring (spatially correlated, similarly loaded)
/// cells on *different* shards, which balances far better than contiguous
/// chunking when load is spatially skewed.
#[inline]
pub fn shard_of(index: usize, shards: usize) -> usize {
    index % shards.max(1)
}

/// What one shard processed during an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ShardIngest {
    /// Shard index.
    pub shard: usize,
    /// Chains this shard ran (including starved ones).
    pub chains: usize,
    /// Tuples routed into this shard's chains.
    pub tuples: usize,
    /// Thread-CPU nanoseconds this shard's worker spent processing its
    /// chains ([`thread_busy_ns`]) — the scheduling-quality signal: an
    /// epoch's critical path is `max` over shards, its total work is
    /// `sum` over shards. CPU time (not wall) so oversubscribed hosts
    /// don't inflate idle shards.
    pub busy_ns: u64,
}

/// The merged outcome of one epoch's map + process phases.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IngestReport {
    /// Tuples routed to a materialized chain (sum over shards).
    pub routed: usize,
    /// Tuples dropped at the map phase (unmaterialized cell or attribute).
    pub dropped: usize,
    /// Per-shard breakdown, ascending by shard index; one entry under
    /// [`ExecMode::Serial`].
    pub shards: Vec<ShardIngest>,
}

impl IngestReport {
    /// Merges per-shard statistics into an epoch report; shards arrive in
    /// ascending index order (the executor guarantees it).
    pub fn merge(dropped: usize, shards: Vec<ShardIngest>) -> Self {
        debug_assert!(
            shards.windows(2).all(|w| w[0].shard < w[1].shard),
            "shard stats must merge in ascending order"
        );
        let routed = shards.iter().map(|s| s.tuples).sum();
        Self { routed, dropped, shards }
    }

    /// Total chains executed across shards.
    pub fn chains(&self) -> usize {
        self.shards.iter().map(|s| s.chains).sum()
    }

    /// Total processing work across shards (nanoseconds of busy time).
    pub fn work_ns(&self) -> u64 {
        self.shards.iter().map(|s| s.busy_ns).sum()
    }

    /// The epoch's processing critical path: the busiest shard's time.
    /// With perfect balance this approaches `work_ns / shards` — the
    /// epoch time a sufficiently parallel host would observe.
    pub fn critical_path_ns(&self) -> u64 {
        self.shards.iter().map(|s| s.busy_ns).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_covers_everything_disjointly() {
        // Assignments over 10 sorted positions and 4 shards: each shard
        // gets every 4th position, sizes differ by at most one.
        let mut sizes = [0usize; 4];
        for i in 0..10 {
            let s = shard_of(i, 4);
            assert_eq!(s, i % 4);
            sizes[s] += 1;
        }
        assert_eq!(sizes, [3, 3, 2, 2]);
        // A degenerate shard count clamps to one shard.
        assert!((0..5).all(|i| shard_of(i, 0) == 0));
    }

    #[test]
    fn serial_is_one_shard() {
        assert_eq!(ExecMode::Serial.shards(), 1);
        assert_eq!(ExecMode::Sharded(4).shards(), 4);
        assert!((0..5).all(|i| shard_of(i, 1) == 0));
    }

    #[test]
    #[should_panic(expected = "no workers")]
    fn zero_shards_rejected() {
        let _ = ExecMode::Sharded(0).shards();
    }

    #[test]
    fn merge_sums_tuples_and_chains() {
        let r = IngestReport::merge(
            3,
            vec![
                ShardIngest { shard: 0, chains: 2, tuples: 10, busy_ns: 40 },
                ShardIngest { shard: 1, chains: 1, tuples: 5, busy_ns: 60 },
            ],
        );
        assert_eq!(r.routed, 15);
        assert_eq!(r.dropped, 3);
        assert_eq!(r.chains(), 3);
        assert_eq!(r.work_ns(), 100);
        assert_eq!(r.critical_path_ns(), 60);
    }
}
