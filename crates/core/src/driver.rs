//! The epoch driver: one builder-style entry point for every way an
//! epoch loop can execute.
//!
//! Historically the server grew six `run_epoch*` methods (plain, hooked,
//! tapped, instrumented, crash-armed, replayed — and the cross products
//! were starting to sprawl). They all ran the *same* loop with different
//! seams plugged in, so they collapse here into one [`EpochDriver`] that
//! holds the optional seams ([`ControlHook`], [`EpochTap`],
//! [`PhaseTimer`], a pre-epoch prologue, a [`CrashPoint`]) and offers the
//! execution shapes:
//!
//! - [`EpochDriver::step`] / [`EpochDriver::step_replayed`]: one epoch,
//!   **classic schedule** — dispatch is issued and executed at the top of
//!   the epoch and the hook's actions are applied inside the same epoch.
//!   Bit-identical to the historical `run_epoch*` loop; single-epoch
//!   unit tests and examples keep their exact semantics.
//! - [`EpochDriver::run`] / [`EpochDriver::run_replayed`]: a whole
//!   horizon under the **staged schedule** — the single-threaded
//!   execution of exactly the slot schedule the pipelined executor runs
//!   across four stage workers (see [`crate::pipeline`]). Each slot `t`
//!   executes the dispatch orders issued during slot `t-1`, applies the
//!   hook's epoch-`t-1` actions, and issues slot `t+1`'s orders, so the
//!   drain stage of epoch `t+1` can overlap the ingest of epoch `t`
//!   without changing a byte of any report, trace, or run log.
//! - [`EpochDriver::run_pipelined`] (in [`crate::pipeline`]): the same
//!   staged schedule spread across four long-lived worker threads
//!   connected by bounded channels.
//!
//! # The staged schedule, precisely
//!
//! With `n` slots and a fresh driver, slot `t` performs, in order:
//!
//! 1. *(drain stage)* prologue(`t`) → execute the orders issued for `t` →
//!    mobility sub-steps → drain responses.
//! 2. *(ingest stage)* fold the executed `sent` into the dispatch stats →
//!    apply the hook's actions from epoch `t-1` (the report's
//!    `stale_actions`) → retry shortfall feedback from `t`'s responses →
//!    **issue** the orders for `t+1` → error injection/mitigation/
//!    ingestion/merge of `t`'s responses → budget tuning → assemble the
//!    epoch report → snapshot the hook's [`EpochObservation`].
//! 3. *(control stage)* hook observes epoch `t`, emits actions.
//! 4. *(render stage)* tap records epoch `t` (report + raw responses +
//!    the actions the hook just emitted).
//!
//! Orders for slot 0 are issued once before the loop. The actions the
//! hook emits for the final slot are applied after the loop on normal
//! completion (so a resumed run and its uninterrupted twin leave the
//! server in the same final state); their stale-action count lands in no
//! report, because no later epoch exists to carry it.
//!
//! Relative to the classic schedule this deterministically pins the
//! control lag: a `SetBudget` emitted for epoch `t` is applied during
//! slot `t+1` — after slot `t+2`'s orders were already issued — so it
//! first affects the dispatch of epoch `t+2`, "the first epoch not yet
//! ingested". A `RebuildChain` emitted for epoch `t` takes effect before
//! epoch `t+1`'s ingestion. The lag is part of the blessed byte contract:
//! serial, `Sharded(n)`, and `Pipelined(n)` all execute this exact
//! schedule.
//!
//! # Crash semantics
//!
//! [`EpochDriver::crash_at`] arms a [`CrashPoint`] at one slot of a
//! horizon run, reproducing a process kill: the three in-loop points
//! abandon the run at their boundary (everything already recorded stays
//! recorded, the crashed epoch's tap never fires), while
//! [`CrashPoint::MidLogAppend`] completes the slot normally — that tear
//! lives in the log writer, not the loop. Because every record of epoch
//! `e` depends only on work performed through slot `e`, a crashed run's
//! durable prefix is byte-identical to the same prefix of the
//! uninterrupted run — the property salvage + resume is built on.

use crate::exec::{thread_busy_ns, IngestReport};
use crate::handler::{execute_orders, DispatchStats, RequestResponseHandler, SendOrder};
use crate::phase::{EpochPhase, PhaseTimer, PipelineStage};
use crate::plan::Fabricator;
use crate::query::QueryId;
use crate::server::{
    ControlAction, ControlHook, CraqrServer, CrashPoint, EpochInputsRecord, EpochObservation,
    EpochReport, EpochTap, FaultDeltas, ReplayInputs, ServerConfig,
};
use crate::tenant::{TenantId, TenantRegistry};
use crate::tuple::{CrowdTuple, TupleIdGen};
use craqr_engine::BatchPool;
use craqr_sensing::{AttributeId, Crowd, SensorResponse};
use rand::rngs::StdRng;
use std::collections::HashMap;

/// The planner-side half of a borrow-split server: every field the
/// ingest stage owns while the drain stage owns the [`Crowd`]. The
/// pipelined executor moves this into the ingest worker; the serial
/// driver keeps it on the calling thread. Either way the epoch sub-ops
/// ([`EpochCore::issue`], [`EpochCore::absorb`], …) run on exactly one
/// owner, which is what makes the two executors bit-identical by
/// construction.
pub(crate) struct EpochCore<'s> {
    pub(crate) fabricator: &'s mut Fabricator,
    pub(crate) handler: &'s mut RequestResponseHandler,
    pub(crate) idgen: &'s mut TupleIdGen,
    pub(crate) error_rng: &'s mut StdRng,
    pub(crate) outputs: &'s mut HashMap<QueryId, Vec<CrowdTuple>>,
    pub(crate) tenants: &'s mut Option<TenantRegistry>,
    pub(crate) config: ServerConfig,
}

/// Borrow-splits a server into the crowd (drain-stage state), the epoch
/// counter, and the planner half (ingest-stage state).
pub(crate) fn split(server: &mut CraqrServer) -> (&mut Crowd, &mut u64, EpochCore<'_>) {
    let config = server.config;
    let CraqrServer {
        crowd, fabricator, handler, idgen, error_rng, outputs, tenants, epoch, ..
    } = server;
    (crowd, epoch, EpochCore { fabricator, handler, idgen, error_rng, outputs, tenants, config })
}

/// One epoch's issued dispatch: the handler/tenant side ran to
/// completion (budgets drawn, pools clamped and charged), the crowd side
/// is still pending as [`SendOrder`]s. `stats.sent` stays 0 until the
/// orders execute.
pub(crate) struct IssuedDispatch {
    pub(crate) orders: Vec<SendOrder>,
    pub(crate) stats: DispatchStats,
    pub(crate) charges: Vec<(TenantId, f64)>,
}

/// The merge of one epoch's ingestion, pre-report.
pub(crate) struct Ingested {
    pub(crate) fresh: Vec<(QueryId, Vec<CrowdTuple>)>,
    pub(crate) delivered: Vec<(QueryId, usize)>,
    pub(crate) exec: IngestReport,
    pub(crate) ingested: usize,
    pub(crate) rejected: usize,
}

/// Everything slot-local the report assembly needs besides the
/// ingestion outcome.
pub(crate) struct SlotMeta {
    pub(crate) epoch: u64,
    pub(crate) now: f64,
    pub(crate) dispatch: DispatchStats,
    pub(crate) responses: usize,
    pub(crate) faults: FaultDeltas,
    pub(crate) charges: Vec<(TenantId, f64)>,
    pub(crate) stale_actions: u64,
}

impl EpochCore<'_> {
    /// The issuing half of a dispatch (see
    /// [`RequestResponseHandler::issue_epoch_orders`]): demands, tenant
    /// share refresh, epoch meters, budget draws, clamping/charging, and
    /// the per-epoch tenant charges — everything but the crowd sends.
    /// `detached` skips order collection for replays.
    pub(crate) fn issue(&mut self, detached: bool) -> IssuedDispatch {
        let demands = self.fabricator.demands();
        let shares = if self.tenants.is_some() {
            self.fabricator.refresh_tenant_shares();
            Some(self.fabricator.tenant_shares())
        } else {
            None
        };
        if let Some(registry) = self.tenants.as_mut() {
            registry.begin_epoch();
        }
        let tenancy = match (self.tenants.as_mut(), shares) {
            (Some(registry), Some(shares)) => Some((registry, shares)),
            _ => None,
        };
        let grid = if detached { None } else { Some(self.fabricator.grid()) };
        let (orders, stats) = self.handler.issue_epoch_orders(grid, &demands, tenancy);
        let charges = self.tenants.as_ref().map_or_else(Vec::new, |t| t.epoch_charges());
        IssuedDispatch { orders, stats, charges }
    }

    /// Shortfall feedback for bounded retry (when configured): counts the
    /// drained responses per chain *before* error injection mutates them.
    pub(crate) fn observe_drained(&mut self, responses: &[SensorResponse]) {
        if !self.handler.retry_enabled() {
            return;
        }
        let grid = self.fabricator.grid();
        let mut counts: HashMap<(craqr_geom::CellId, AttributeId), u64> = HashMap::new();
        for r in responses {
            if let Some(cell) = grid.cell_of(r.measurement.point.x, r.measurement.point.y) {
                *counts.entry((cell, r.measurement.attr)).or_insert(0) += 1;
            }
        }
        self.handler.observe_responses(&counts);
    }

    /// Applies a hook's actions, returning how many were stale (targeted
    /// a chain retired since the observation).
    pub(crate) fn apply_actions(&mut self, actions: &[ControlAction]) -> u64 {
        let mut stale = 0u64;
        for action in actions {
            match *action {
                ControlAction::SetBudget { cell, attr, requests_per_epoch } => {
                    if !self.handler.set_budget(cell, attr, requests_per_epoch) {
                        stale += 1;
                    }
                }
                ControlAction::RebuildChain { cell, attr } => {
                    if let Some(leftovers) = self.fabricator.rebuild_chain(cell, attr) {
                        // The merge drains every sink before actions can
                        // run, so the leftovers are empty; they flow into
                        // the output buffers anyway so no tuple can ever
                        // be lost. If an operator starts buffering output
                        // across epochs this trips: such tuples would
                        // bypass `delivered` accounting and hook
                        // observation, and that needs a conscious design
                        // decision.
                        debug_assert!(
                            leftovers.iter().all(|(_, buf)| buf.is_empty()),
                            "rebuild leftovers bypass delivered accounting"
                        );
                        for (qid, buf) in leftovers {
                            self.outputs.entry(qid).or_default().extend(buf);
                        }
                    } else {
                        stale += 1;
                    }
                }
            }
        }
        stale
    }

    /// Error injection → mitigation → id assignment → map/process →
    /// per-query merge, consuming one epoch's drained responses. Returns
    /// the merge outcome and the spent response buffer (retained in place
    /// through mitigation) for recycling. The mitigation region comes
    /// from the grid, which stores the crowd's region verbatim — the
    /// ingest stage never needs the crowd.
    pub(crate) fn absorb(
        &mut self,
        mut responses: Vec<SensorResponse>,
    ) -> (Ingested, Vec<SensorResponse>) {
        self.config.error_model.corrupt_batch(&mut responses, self.error_rng);
        let region = self.fabricator.grid().region();
        let (responses, rejected) = self.config.mitigation.apply(responses, &region);
        let tuples = self.idgen.ingest(&responses);
        let ingested = tuples.len();
        let exec = self.fabricator.ingest_batch_mode(&tuples, self.config.exec);
        let mut fresh: Vec<(QueryId, Vec<CrowdTuple>)> = Vec::new();
        let mut delivered = Vec::new();
        for qid in self.fabricator.query_ids() {
            let out = self.fabricator.collect_output(qid).expect("standing query");
            delivered.push((qid, out.len()));
            fresh.push((qid, out));
        }
        (Ingested { fresh, delivered, exec, ingested, rejected }, responses)
    }

    /// Budget tuning from flatten telemetry + report assembly. Returns
    /// the report and the fresh per-query tuples (for the hook's
    /// observation and the output buffers).
    pub(crate) fn finish_report(
        &mut self,
        meta: SlotMeta,
        ing: Ingested,
    ) -> (EpochReport, Vec<(QueryId, Vec<CrowdTuple>)>) {
        let tuning = self.handler.tune(&self.fabricator.flatten_reports());
        let report = EpochReport {
            epoch: meta.epoch,
            now: meta.now,
            dispatch: meta.dispatch,
            responses: meta.responses,
            mitigation_rejected: ing.rejected,
            ingested: ing.ingested,
            exec: ing.exec,
            delivered: ing.delivered,
            tuning,
            tenant_charges: meta.charges,
            stale_actions: meta.stale_actions,
            faults: meta.faults,
        };
        (report, ing.fresh)
    }

    /// Snapshots the hook's observation (only when one is listening) and
    /// banks the fresh tuples into the per-query output buffers.
    pub(crate) fn observe_and_bank(
        &mut self,
        report: &EpochReport,
        fresh: Vec<(QueryId, Vec<CrowdTuple>)>,
        want_obs: bool,
        epoch_start: f64,
        epoch_end: f64,
    ) -> Option<EpochObservation> {
        let obs = want_obs.then(|| {
            EpochObservation::capture(
                report,
                &fresh,
                self.fabricator,
                self.handler,
                self.tenants.as_ref(),
                epoch_start,
                epoch_end,
            )
        });
        for (qid, out) in fresh {
            self.outputs.entry(qid).or_default().extend(out);
        }
        obs
    }
}

/// Buffer-recycling counters for a horizon run — the observable half of
/// the [`BatchPool`]-backed response/raw buffer recycling. Timing- and
/// allocation-free runs are not part of the byte contract; these counters
/// exist so tests can pin the *steady state*: after warm-up, every epoch
/// reuses pooled buffers and `fresh_allocations` stops growing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers newly allocated because the pool was empty.
    pub fresh_allocations: u64,
    /// Buffers served from the pool (allocation-free epochs).
    pub recycled: u64,
    /// Buffers parked in the pools when the run ended.
    pub pooled: usize,
}

/// What a horizon run ([`EpochDriver::run`] and friends) produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunOutcome {
    /// One report per completed epoch, in epoch order. A crashed run
    /// holds exactly the epochs whose render stage fired — the same set a
    /// salvaged run log records as durable.
    pub reports: Vec<EpochReport>,
    /// `false` when an armed in-loop [`CrashPoint`] abandoned the run.
    pub completed: bool,
    /// Buffer-recycling counters (see [`PoolStats`]).
    pub pool: PoolStats,
}

impl RunOutcome {
    /// Buffers parked in the driver's pools when the run ended —
    /// non-zero once recycling reached steady state.
    pub fn pooled_buffers(&self) -> usize {
        self.pool.pooled
    }
}

/// A per-epoch crowd mutation applied before dispatch (regime shifts,
/// churn, fault-window updates) — see [`EpochDriver::prologue`].
pub(crate) type Prologue<'a> = Box<dyn FnMut(u64, &mut Crowd) + Send + 'a>;

/// The builder-style epoch executor over one [`CraqrServer`] — see the
/// [module docs](crate::driver) for schedules and semantics. Build one
/// with [`CraqrServer::driver`], chain the optional seams, then call one
/// of the execution shapes:
///
/// ```text
/// server.driver().step();                      // one classic epoch
/// server.driver().hook(&mut h).run(16);        // staged 16-epoch horizon
/// server.driver().tap(&mut t).run_pipelined(16); // same bytes, 4 threads
/// ```
pub struct EpochDriver<'a> {
    pub(crate) server: &'a mut CraqrServer,
    pub(crate) hook: Option<&'a mut dyn ControlHook>,
    pub(crate) tap: Option<&'a mut dyn EpochTap>,
    pub(crate) timer: Option<&'a mut dyn PhaseTimer>,
    pub(crate) prologue: Option<Prologue<'a>>,
    pub(crate) crash: Option<(u64, CrashPoint)>,
}

impl<'a> EpochDriver<'a> {
    /// A bare driver: no seams, no crash, classic and staged schedules
    /// both available.
    pub fn new(server: &'a mut CraqrServer) -> Self {
        Self { server, hook: None, tap: None, timer: None, prologue: None, crash: None }
    }

    /// Installs the control seam: the hook observes every epoch and its
    /// actions are applied per the active schedule.
    pub fn hook(mut self, hook: &'a mut dyn ControlHook) -> Self {
        self.hook = Some(hook);
        self
    }

    /// Installs the recording seam: the tap observes every completed
    /// epoch's inputs, in strict epoch order.
    pub fn tap(mut self, tap: &'a mut dyn EpochTap) -> Self {
        self.tap = Some(tap);
        self
    }

    /// Installs the timing seam. Without one, the loop reads no clock at
    /// all; with one, only the timer sees the readings — every
    /// checksummed artifact is bit-identical either way.
    pub fn timer(mut self, timer: &'a mut dyn PhaseTimer) -> Self {
        self.timer = Some(timer);
        self
    }

    /// Installs a pre-epoch prologue for horizon runs: called with the
    /// slot index and the crowd at the top of each slot's drain stage
    /// (scripted world shifts, churn, fault windows). Crowd-only by
    /// construction — the planner half is mid-flight on another epoch
    /// when the pipelined executor runs this.
    pub fn prologue(mut self, f: impl FnMut(u64, &mut Crowd) + Send + 'a) -> Self {
        self.prologue = Some(Box::new(f));
        self
    }

    /// Arms a crash: the horizon run dies at `point` of slot `slot`,
    /// exactly as a process kill there would (see the module docs).
    pub fn crash_at(mut self, slot: u64, point: CrashPoint) -> Self {
        self.crash = Some((slot, point));
        self
    }

    /// Runs one epoch under the **classic schedule** (issue + execute at
    /// the top, actions applied in-epoch) — bit-identical to the
    /// historical `run_epoch*` family.
    pub fn step(&mut self) -> EpochReport {
        self.classic(None).expect("no crash point armed")
    }

    /// [`EpochDriver::step`] from recorded inputs instead of the live
    /// crowd: dispatch draws the budgets but sends nothing, the crowd is
    /// only stepped to advance the simulation clock (use a detached —
    /// zero-sensor — crowd), and the recorded responses take the place of
    /// the drained ones. Everything downstream runs exactly as live.
    pub fn step_replayed(&mut self, inputs: ReplayInputs<'_>) -> EpochReport {
        self.classic(Some(inputs)).expect("no crash point armed")
    }

    /// Runs one classic epoch that dies at `point` (see
    /// [`CrashPoint`]): every mutation before the point persists, the
    /// rest of the epoch never happens, and the tap never fires. Returns
    /// `None` for the three in-loop points; [`CrashPoint::MidLogAppend`]
    /// completes the epoch (the tear lives in the log writer) and
    /// returns its report.
    pub fn step_to_crash(&mut self, point: CrashPoint) -> Option<EpochReport> {
        self.crash = match point {
            CrashPoint::MidLogAppend => None,
            p => Some((0, p)),
        };
        let r = self.classic(None);
        self.crash = None;
        r
    }

    /// Runs `epochs` slots of the **staged schedule** single-threaded —
    /// the serial executor of the dataflow the pipelined executor spreads
    /// across worker threads, byte-identical to it by construction.
    pub fn run(mut self, epochs: u64) -> RunOutcome {
        self.run_horizon(epochs, None)
    }

    /// Runs the staged schedule across four worker threads (drain,
    /// ingest, control, render) connected by bounded channels — see
    /// [`crate::pipeline`]. Byte-identical to [`EpochDriver::run`].
    pub fn run_pipelined(self, epochs: u64) -> RunOutcome {
        crate::pipeline::run_pipelined(self, epochs)
    }

    /// [`EpochDriver::run`] from recorded inputs (one [`ReplayInputs`]
    /// per slot, the horizon is the slice length) — the staged-schedule
    /// sibling of [`EpochDriver::step_replayed`].
    pub fn run_replayed(mut self, inputs: &[ReplayInputs<'_>]) -> RunOutcome {
        self.run_horizon(inputs.len() as u64, Some(inputs))
    }

    /// [`EpochDriver::run_pipelined`] from recorded inputs — replays a
    /// log across the four stage workers, byte-identical to
    /// [`EpochDriver::run_replayed`].
    pub fn run_replayed_pipelined(self, inputs: &[ReplayInputs<'_>]) -> RunOutcome {
        crate::pipeline::run_replayed_pipelined(self, inputs)
    }

    /// The classic single-epoch loop — the historical `epoch_inner`,
    /// with dispatch split into issue + execute and the observation
    /// owned. Returns `None` when the armed in-loop crash point fired.
    fn classic(&mut self, replay: Option<ReplayInputs<'_>>) -> Option<EpochReport> {
        let crash = self.crash.map(|(_, p)| p).filter(|p| *p != CrashPoint::MidLogAppend);
        let (crowd, epoch_counter, mut core) = split(self.server);
        let epoch = *epoch_counter;
        *epoch_counter += 1;
        let epoch_start = crowd.now();
        // One clock reading per phase boundary, and only when a timer is
        // installed: `lap` is the *only* clock access in the loop, so an
        // uninstrumented epoch reads no clock at all.
        // craqr-lint: allow(R1): phase latencies feed Timing-tier metrics only, never canonical_events
        let mut phase_clock = self.timer.as_ref().map(|_| thread_busy_ns());
        let mut lap = |timer: &mut Option<&mut dyn PhaseTimer>, phase: EpochPhase| {
            if let Some(t) = timer.as_deref_mut() {
                // craqr-lint: allow(R1): same Timing-tier phase span; excluded from checksummed artifacts
                let now = thread_busy_ns();
                let start = phase_clock.expect("clock anchored when timer installed");
                t.observe(phase, now.saturating_sub(start));
                phase_clock = Some(now);
            }
        };

        // 1. Dispatch acquisition requests per materialized chain. Under
        // replay the budgets are drawn identically but no request exists
        // to send; the crowd-side outcome comes from the log.
        let issued = core.issue(replay.is_some());
        let sent = match &replay {
            None => execute_orders(crowd, &issued.orders),
            Some(inputs) => inputs.sent,
        };
        let mut dispatch = issued.stats;
        dispatch.sent = sent;
        core.handler.record_sent(sent);
        let tenant_charges = issued.charges;
        lap(&mut self.timer, EpochPhase::Dispatch);
        if crash == Some(CrashPoint::PostDispatch) {
            return None;
        }

        // 2. The world moves; responses mature. The replay clock advances
        // through the same sequence of `step` calls so accumulated
        // simulation time stays bit-identical to the live run.
        let dt = core.config.planner.batch_duration / core.config.mobility_substeps as f64;
        let faults_before = FaultDeltas {
            dropped: crowd.responses_dropped(),
            delayed: crowd.responses_delayed(),
            duplicated: crowd.responses_duplicated(),
        };
        for _ in 0..core.config.mobility_substeps {
            crowd.step(dt);
        }
        let faults = match &replay {
            None => FaultDeltas {
                dropped: crowd.responses_dropped() - faults_before.dropped,
                delayed: crowd.responses_delayed() - faults_before.delayed,
                duplicated: crowd.responses_duplicated() - faults_before.duplicated,
            },
            Some(inputs) => inputs.faults,
        };
        let responses = match &replay {
            None => crowd.drain_responses(),
            Some(inputs) => inputs.responses.to_vec(),
        };
        let n_responses = responses.len();
        // The tap sees responses exactly as drained, before error
        // injection mutates them in place. Clone only when someone is
        // listening *and* there is no replay input to borrow from.
        let raw_responses =
            if self.tap.is_some() && replay.is_none() { Some(responses.clone()) } else { None };
        if crash == Some(CrashPoint::PostDrain) {
            return None;
        }
        core.observe_drained(&responses);
        lap(&mut self.timer, EpochPhase::Drain);

        // 3–6. Error injection, mitigation, ingestion, map/process,
        // merge.
        let (ing, _spent) = core.absorb(responses);
        lap(&mut self.timer, EpochPhase::Ingest);

        // 7. Budget tuning + the report (classic: stale_actions patched
        // in after the hook ran, below).
        let epoch_end = crowd.now();
        let meta = SlotMeta {
            epoch,
            now: epoch_end,
            dispatch,
            responses: n_responses,
            faults,
            charges: tenant_charges,
            stale_actions: 0,
        };
        let (mut report, fresh) = core.finish_report(meta, ing);

        // 8. Observation/actuation: the hook sees the epoch, its actions
        // apply inside this same epoch (the classic in-epoch control
        // lag).
        let obs =
            core.observe_and_bank(&report, fresh, self.hook.is_some(), epoch_start, epoch_end);
        let mut actions: Vec<ControlAction> = Vec::new();
        if let Some(hook) = self.hook.as_deref_mut() {
            actions = hook.on_epoch(obs.as_ref().expect("observation built when hook installed"));
            report.stale_actions = core.apply_actions(&actions);
        }
        lap(&mut self.timer, EpochPhase::Control);
        if crash == Some(CrashPoint::PostControl) {
            return None;
        }

        // 9. Recording seam: the tap sees the epoch's inputs (and the
        // actions just applied) after everything else settled.
        if let Some(tap) = self.tap.as_deref_mut() {
            let raw: &[SensorResponse] = match (&replay, &raw_responses) {
                (Some(inputs), _) => inputs.responses,
                (None, Some(raw)) => raw,
                (None, None) => &[],
            };
            tap.on_epoch(&EpochInputsRecord { report: &report, responses: raw, actions: &actions });
        }
        lap(&mut self.timer, EpochPhase::LogAppend);
        Some(report)
    }

    /// The staged schedule, single-threaded: the serial reference
    /// implementation of the pipelined dataflow (see the module docs for
    /// the slot anatomy).
    fn run_horizon(&mut self, n: u64, replay: Option<&[ReplayInputs<'_>]>) -> RunOutcome {
        let in_loop_crash = self.crash.filter(|(_, p)| *p != CrashPoint::MidLogAppend);
        let detached = replay.is_some();
        let (crowd, epoch_counter, mut core) = split(self.server);
        let base = *epoch_counter;
        let mut outcome =
            RunOutcome { reports: Vec::with_capacity(n as usize), ..Default::default() };
        if n == 0 {
            outcome.completed = true;
            return outcome;
        }
        // Response and raw-snapshot buffers recycle through pools, the
        // serial twin of the pipeline's return channels. Pooling only
        // reuses capacity — contents are cleared on every cycle — so it
        // is byte-inert.
        let mut pool: BatchPool<SensorResponse> = BatchPool::default();
        let mut raw_pool: BatchPool<SensorResponse> = BatchPool::default();
        let take = |pool: &mut BatchPool<SensorResponse>, stats: &mut PoolStats| {
            if pool.retained() > 0 {
                stats.recycled += 1;
            } else {
                stats.fresh_allocations += 1;
            }
            pool.take()
        };

        // Per-stage spans (timing tier only; zero clock reads untimed).
        // craqr-lint: allow(R1): stage spans feed Timing-tier metrics only, never canonical_events
        let mut span_clock = self.timer.as_ref().map(|_| thread_busy_ns());
        let mut span = |timer: &mut Option<&mut dyn PhaseTimer>,
                        stage: PipelineStage,
                        slot: u64,
                        phase: EpochPhase| {
            if let Some(t) = timer.as_deref_mut() {
                // craqr-lint: allow(R1): same Timing-tier stage span; excluded from checksummed artifacts
                let now = thread_busy_ns();
                let start = span_clock.expect("clock anchored when timer installed");
                t.observe_stage(stage, slot, phase, now.saturating_sub(start));
                span_clock = Some(now);
            }
        };

        let mut pending = Some(core.issue(detached));
        span(&mut self.timer, PipelineStage::Ingest, 0, EpochPhase::Dispatch);
        let mut pending_actions: Vec<ControlAction> = Vec::new();
        for t in 0..n {
            // ── drain stage ────────────────────────────────────────────
            // A restarted process observes the epoch counter advanced as
            // soon as the slot began, crashed or not.
            *epoch_counter = base + t + 1;
            let epoch_id = base + t;
            if let Some(p) = &mut self.prologue {
                p(t, crowd);
            }
            let epoch_start = crowd.now();
            let issued = pending.take().expect("orders issued by the previous slot");
            let sent = match replay {
                None => execute_orders(crowd, &issued.orders),
                Some(inputs) => inputs[t as usize].sent,
            };
            span(&mut self.timer, PipelineStage::Drain, t, EpochPhase::Dispatch);
            if in_loop_crash == Some((t, CrashPoint::PostDispatch)) {
                return outcome;
            }
            let dt = core.config.planner.batch_duration / core.config.mobility_substeps as f64;
            let faults_before = FaultDeltas {
                dropped: crowd.responses_dropped(),
                delayed: crowd.responses_delayed(),
                duplicated: crowd.responses_duplicated(),
            };
            for _ in 0..core.config.mobility_substeps {
                crowd.step(dt);
            }
            let faults = match replay {
                None => FaultDeltas {
                    dropped: crowd.responses_dropped() - faults_before.dropped,
                    delayed: crowd.responses_delayed() - faults_before.delayed,
                    duplicated: crowd.responses_duplicated() - faults_before.duplicated,
                },
                Some(inputs) => inputs[t as usize].faults,
            };
            let responses = {
                let mut buf = take(&mut pool, &mut outcome.pool);
                match replay {
                    None => crowd.drain_responses_reusing(buf),
                    Some(inputs) => {
                        buf.clear();
                        buf.extend_from_slice(inputs[t as usize].responses);
                        buf
                    }
                }
            };
            let n_responses = responses.len();
            let epoch_end = crowd.now();
            span(&mut self.timer, PipelineStage::Drain, t, EpochPhase::Drain);
            if in_loop_crash == Some((t, CrashPoint::PostDrain)) {
                return outcome;
            }

            // ── ingest stage ───────────────────────────────────────────
            let mut dispatch = issued.stats;
            dispatch.sent = sent;
            core.handler.record_sent(sent);
            // Epoch t-1's actions land here — after epoch t's orders
            // already executed, before epoch t+1's are issued.
            let stale_actions = core.apply_actions(&pending_actions);
            core.observe_drained(&responses);
            span(&mut self.timer, PipelineStage::Ingest, t, EpochPhase::Ingest);
            if t + 1 < n {
                pending = Some(core.issue(detached));
            }
            span(&mut self.timer, PipelineStage::Ingest, t, EpochPhase::Dispatch);
            // Snapshot the raw responses for the tap before error
            // injection mutates the buffer in place; replays borrow from
            // the recorded inputs instead.
            let raw = match (replay, self.tap.is_some()) {
                (None, true) => {
                    let mut buf = take(&mut raw_pool, &mut outcome.pool);
                    buf.clear();
                    buf.extend_from_slice(&responses);
                    Some(buf)
                }
                _ => None,
            };
            let (ing, spent) = core.absorb(responses);
            pool.put(spent);
            let meta = SlotMeta {
                epoch: epoch_id,
                now: epoch_end,
                dispatch,
                responses: n_responses,
                faults,
                charges: issued.charges,
                stale_actions,
            };
            let (report, fresh) = core.finish_report(meta, ing);
            let obs =
                core.observe_and_bank(&report, fresh, self.hook.is_some(), epoch_start, epoch_end);
            span(&mut self.timer, PipelineStage::Ingest, t, EpochPhase::Ingest);

            // ── control stage ──────────────────────────────────────────
            let actions = match self.hook.as_deref_mut() {
                Some(hook) => {
                    hook.on_epoch(obs.as_ref().expect("observation built when hook installed"))
                }
                None => Vec::new(),
            };
            span(&mut self.timer, PipelineStage::Control, t, EpochPhase::Control);
            if in_loop_crash == Some((t, CrashPoint::PostControl)) {
                return outcome;
            }

            // ── render stage ───────────────────────────────────────────
            if let Some(tap) = self.tap.as_deref_mut() {
                let raw_slice: &[SensorResponse] = match (replay, &raw) {
                    (Some(inputs), _) => inputs[t as usize].responses,
                    (None, Some(buf)) => buf,
                    (None, None) => &[],
                };
                tap.on_epoch(&EpochInputsRecord {
                    report: &report,
                    responses: raw_slice,
                    actions: &actions,
                });
            }
            if let Some(buf) = raw {
                raw_pool.put(buf);
            }
            span(&mut self.timer, PipelineStage::Render, t, EpochPhase::LogAppend);
            outcome.reports.push(report);
            pending_actions = actions;
        }
        // The final epoch's actions land on a server no further epoch
        // reads; applied anyway so a full-horizon rerun (resume) and the
        // original leave bit-identical final state. Their stale count has
        // no report to live in.
        let _ = core.apply_actions(&pending_actions);
        outcome.pool.pooled = pool.retained() + raw_pool.retained();
        outcome.completed = true;
        outcome
    }
}
