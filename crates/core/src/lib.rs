//! # CrAQR — Crowdsensed data AcQuisition using multi-dimensional point pRocesses
//!
//! This crate is the paper's primary contribution: a system that accepts
//! *acquisitional queries* — "acquire attribute `A⟨j⟩` from region `R'` at
//! rate λ /km²/min" — over an uncontrollable mobile crowd, and fabricates
//! crowdsensed data streams that satisfy those rates in expectation.
//!
//! The architecture follows Fig. 1 of the paper:
//!
//! ```text
//!  queries ──▶ planner ──▶ per-cell execution topologies (PMAT operators)
//!                               ▲                │
//!  request/response handler ────┘ (tuples)       ▼ (per-cell streams)
//!         │    ▲                          merge (U-operators)
//!         ▼    │ responses                       │
//!        mobile crowd                            ▼  per-query MCDS
//! ```
//!
//! Modules, in paper order:
//!
//! - [`mod tuple`](crate::tuple): the crowdsensed tuple `(t⟨j⟩ᵢ, x⟨j⟩ᵢ, y⟨j⟩ᵢ, a⟨j⟩ᵢ)`.
//! - [`ops`]: the PMAT operator family — [`ops::FlattenOp`] (`F`),
//!   [`ops::ThinOp`] (`T`), [`ops::PartitionOp`] (`P`), [`ops::UnionOp`]
//!   (`U`), plus the researched-but-unpublished extras the paper alludes to
//!   ([`ops::SuperposeOp`], [`ops::RateMeterOp`]).
//! - [`query`]: typed acquisitional queries, the attribute catalog, and a
//!   small declarative parser (`ACQUIRE rain FROM RECT(..) RATE 10`).
//! - [`plan`]: the Section V machinery — the cell hashmap, per-cell
//!   `F → T…T` chains with rate-sorted taps, query insertion/deletion with
//!   the consecutive-`T` merge rule, and the map/process/merge fabricator.
//! - [`budget`] and [`handler`]: the request/response handler with
//!   per-(attribute, cell) budgets tuned by the flatten operators' percent
//!   rate violation `N_v`.
//! - [`incentive`], [`optimizer`], [`error_model`]: the Section VI
//!   extensions (incentive escalation, chain-vs-tree topology cost,
//!   error injection and mitigation).
//! - [`tenant`]: multi-tenant budget pools — per-owner admission control
//!   at submit time and conservation-enforced per-epoch charging at
//!   dispatch time.
//! - [`server`]: [`server::CraqrServer`] gluing all of the above to a
//!   simulated [`craqr_sensing::Crowd`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod budget;
pub mod driver;
pub mod error_model;
pub mod exec;
pub mod handler;
pub mod incentive;
pub mod ops;
pub mod optimizer;
pub mod phase;
pub mod pipeline;
pub mod plan;
pub mod query;
pub mod server;
pub mod tenant;
pub mod tuple;

pub use budget::{Budget, BudgetTuner};
pub use driver::{EpochDriver, PoolStats, RunOutcome};
pub use error_model::{ErrorModel, Mitigation};
pub use exec::{ExecMode, IngestReport, ShardIngest};
pub use handler::{RequestResponseHandler, RetryPolicy};
pub use incentive::IncentivePolicy;
pub use ops::{FlattenOp, PartitionOp, RateMeterOp, SuperposeOp, ThinOp, UnionOp};
pub use phase::{EpochPhase, PhaseTimer, PipelineStage};
pub use plan::{Fabricator, PlannerConfig, TopologyShape};
pub use query::{AcquisitionQuery, AttributeCatalog, ParseError, QueryId};
pub use server::{
    BudgetView, ControlAction, ControlHook, CraqrServer, CrashPoint, EpochInputsRecord,
    EpochObservation, EpochReport, EpochTap, FaultDeltas, PlanView, QueryPlanView, ReplayInputs,
    ServerConfig,
};
pub use tenant::{AdmissionDecision, BudgetPool, TenantId, TenantRegistry, TenantSummary};
pub use tuple::CrowdTuple;
