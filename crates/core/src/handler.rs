//! The request/response handler — Section IV-A.

use crate::budget::{Budget, BudgetTuner, TuneOutcome};
use crate::incentive::{IncentivePolicy, IncentiveState};
use crate::ops::FlattenReport;
use crate::tenant::{TenantId, TenantRegistry};
use craqr_geom::{CellId, Grid};
use craqr_sensing::{AttributeId, Crowd};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-chain tenant ownership shares, as produced by
/// [`crate::plan::Fabricator::tenant_shares`].
pub type ChainShares = HashMap<(CellId, AttributeId), Vec<(TenantId, f64)>>;

/// The tenant-charging context one dispatch runs under: the registry
/// holding the pools plus the chain→tenant share map. `None` is the
/// single-owner world — no clamping, no charging, bit-identical to the
/// pre-tenant dispatch.
pub type Tenancy<'a> = Option<(&'a mut TenantRegistry, &'a ChainShares)>;

/// Clamps one chain's drawn request count to what its owning tenants'
/// pools can still cover this epoch, charging the dispatched amount to
/// them by share. The single definition both the live and the detached
/// dispatch use — the registry's epoch meters are handler-side state a
/// replay must reproduce bit-for-bit, so the two paths must never
/// diverge. No tenancy (or an unowned chain) passes `wanted` through
/// untouched.
fn clamp_and_charge(tenancy: &mut Tenancy<'_>, key: (CellId, AttributeId), wanted: usize) -> usize {
    match tenancy {
        Some((registry, shares)) => match shares.get(&key) {
            Some(owners) => {
                let allowed = registry.allow(owners, wanted);
                registry.charge(owners, allowed);
                allowed
            }
            None => wanted,
        },
        None => wanted,
    }
}

/// Executes issued [`SendOrder`]s on the crowd, returning how many
/// requests were actually sent. The crowd calls happen in order-issue
/// order — the same sequence, with the same arguments, the fused dispatch
/// loop produced — so the crowd's RNG stream is bit-identical whether a
/// dispatch was fused or staged.
pub fn execute_orders(crowd: &mut Crowd, orders: &[SendOrder]) -> u64 {
    let mut sent = 0u64;
    for o in orders {
        sent += crowd.dispatch_requests(o.attr, &o.rect, o.allowed, o.incentive) as u64;
    }
    sent
}

/// Bounded retry/backoff for response shortfalls — the graceful-
/// degradation half of the fault-injection story (crowds that drop or
/// delay responses; see `craqr_sensing::CrowdFaults`).
///
/// After each epoch the server reports how many responses each chain's
/// dispatch actually yielded ([`RequestResponseHandler::observe_responses`]).
/// A chain that got fewer than `shortfall_threshold × allowed` schedules
/// `shortfall × backoff^attempts` extra requests for its *next* dispatch,
/// up to `max_attempts` consecutive times; a healthy epoch resets the
/// counter. The extra requests ride through the normal dispatch path —
/// budget-drawn, tenant-clamped, recorded in the log's `requested`
/// figure — so retries are deterministic and replay-identical across
/// execution modes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// A chain is short when `responses < shortfall_threshold × allowed`
    /// (in `[0, 1]`).
    pub shortfall_threshold: f64,
    /// Geometric damping per consecutive attempt (in `(0, 1]`): attempt
    /// `k` re-asks `floor(shortfall × backoff^k)` requests.
    pub backoff: f64,
    /// Consecutive shortfall epochs a chain may retry before giving up
    /// until it recovers (≥ 1).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { shortfall_threshold: 0.5, backoff: 0.5, max_attempts: 2 }
    }
}

impl RetryPolicy {
    /// Checks the policy's knobs, returning the first violated constraint
    /// as `(field, requirement)` (spec-facing field names).
    pub fn validate(&self) -> Result<(), (&'static str, String)> {
        if !(self.shortfall_threshold.is_finite()
            && (0.0..=1.0).contains(&self.shortfall_threshold))
        {
            return Err((
                "faults.retry.threshold",
                format!("must be in [0,1], got {}", self.shortfall_threshold),
            ));
        }
        if !(self.backoff.is_finite() && self.backoff > 0.0 && self.backoff <= 1.0) {
            return Err((
                "faults.retry.backoff",
                format!("must be in (0,1], got {}", self.backoff),
            ));
        }
        if self.max_attempts == 0 {
            return Err(("faults.retry.max_attempts", "must be >= 1".into()));
        }
        Ok(())
    }
}

/// Per-chain retry bookkeeping: consecutive shortfall attempts and the
/// extra requests queued for the next dispatch.
#[derive(Debug, Clone, Copy, Default)]
struct RetryState {
    attempts: u32,
    pending: u64,
}

/// One crowd-side send the handler decided on: dispatch `allowed`
/// acquisition requests for `(cell, attr)` into `rect` at `incentive`.
///
/// Issuing orders (budget draws, retry top-ups, tenant clamping/charging
/// — all handler/registry mutations) is separated from *executing* them
/// on the crowd so the pipelined executor can run the two halves on
/// different stage workers: stage 2 issues epoch `t+1`'s orders while
/// stage 1 is still draining epoch `t`. Executing a batch of orders
/// performs exactly the same crowd calls, in exactly the same sequence,
/// as the fused dispatch loop did — the crowd's RNG stream cannot tell
/// the difference.
#[derive(Debug, Clone, PartialEq)]
pub struct SendOrder {
    /// Which cell.
    pub cell: CellId,
    /// Which attribute.
    pub attr: AttributeId,
    /// The cell's rectangle (the dispatch target region).
    pub rect: craqr_geom::Rect,
    /// Requests to send after budget draw and tenant clamping.
    pub allowed: usize,
    /// Incentive offered per request.
    pub incentive: f64,
}

/// Per-epoch dispatch statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Requests the handler attempted to send.
    pub requested: u64,
    /// Requests actually sent (cells can be empty of sensors).
    pub sent: u64,
    /// Requests withheld because an owning tenant's budget pool was
    /// exhausted this epoch (always 0 in single-owner servers).
    pub throttled: u64,
}

/// One budget-tuning event, for observability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneEvent {
    /// Which cell.
    pub cell: CellId,
    /// Which attribute.
    pub attr: AttributeId,
    /// The smoothed `N_v` that drove the decision (percent).
    pub nv: f64,
    /// The decision.
    pub outcome: TuneOutcome,
    /// The budget after tuning (requests/epoch).
    pub budget_after: f64,
}

/// The request/response handler: owns the per-(attribute, cell) budgets
/// `β⟨j⟩(q,r)`, sends acquisition requests to randomly selected sensors
/// through the [`Crowd`], and adapts the budgets from the flatten
/// operators' `N_v` telemetry. When a budget saturates it escalates the
/// incentive instead (Section VI).
pub struct RequestResponseHandler {
    budgets: HashMap<(CellId, AttributeId), Budget>,
    incentives: HashMap<(CellId, AttributeId), IncentiveState>,
    tuner: BudgetTuner,
    incentive_policy: IncentivePolicy,
    initial_budget: f64,
    total_requested: u64,
    total_sent: u64,
    exhausted_events: u64,
    retry_policy: Option<RetryPolicy>,
    retry: HashMap<(CellId, AttributeId), RetryState>,
    /// `allowed` per chain at the most recent dispatch — what
    /// [`RequestResponseHandler::observe_responses`] measures shortfalls
    /// against. Keyed on `allowed` (not `sent`): the detached replay
    /// dispatch has no per-chain `sent`, and `allowed` is computed
    /// identically on both paths.
    last_allowed: HashMap<(CellId, AttributeId), u64>,
    retries_requested: u64,
    retry_attempts: u64,
}

impl RequestResponseHandler {
    /// Creates a handler; new (attribute, cell) pairs start at
    /// `initial_budget` requests per epoch.
    ///
    /// # Panics
    /// Panics on a negative initial budget.
    #[track_caller]
    pub fn new(tuner: BudgetTuner, incentive_policy: IncentivePolicy, initial_budget: f64) -> Self {
        assert!(initial_budget >= 0.0, "initial budget must be >= 0");
        Self {
            budgets: HashMap::new(),
            incentives: HashMap::new(),
            tuner,
            incentive_policy,
            initial_budget,
            total_requested: 0,
            total_sent: 0,
            exhausted_events: 0,
            retry_policy: None,
            retry: HashMap::new(),
            last_allowed: HashMap::new(),
            retries_requested: 0,
            retry_attempts: 0,
        }
    }

    /// Installs (or clears) the bounded retry/backoff policy. With no
    /// policy the handler is bit-identical to a retry-free build.
    ///
    /// # Panics
    /// Panics on an invalid policy (see [`RetryPolicy::validate`]).
    #[track_caller]
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        if let Some(p) = &policy {
            if let Err((field, message)) = p.validate() {
                panic!("invalid retry policy: {field}: {message}");
            }
        }
        self.retry_policy = policy;
    }

    /// Whether a retry policy is installed (the server only pays for
    /// per-chain response counting when it is).
    pub fn retry_enabled(&self) -> bool {
        self.retry_policy.is_some()
    }

    /// Extra requests dispatched by retry attempts since creation.
    pub fn retries_requested(&self) -> u64 {
        self.retries_requested
    }

    /// Shortfall events that scheduled a retry since creation (each one
    /// queues backoff-damped extra requests for the next dispatch). A
    /// deterministic function of the response stream, so the count is
    /// identical live and replayed.
    pub fn retry_attempts(&self) -> u64 {
        self.retry_attempts
    }

    /// Takes the extra requests a chain's pending retry scheduled for
    /// this dispatch.
    fn take_retry_pending(&mut self, key: (CellId, AttributeId)) -> usize {
        match self.retry.get_mut(&key) {
            Some(state) => std::mem::take(&mut state.pending) as usize,
            None => 0,
        }
    }

    /// Feeds back how many responses each chain's most recent dispatch
    /// yielded (counted at the drain seam, pre-error-injection). Chains
    /// short of `threshold × allowed` schedule damped extra requests for
    /// the next dispatch; healthy chains reset their attempt counter.
    /// No-op without a policy.
    pub fn observe_responses(&mut self, counts: &HashMap<(CellId, AttributeId), u64>) {
        let Some(policy) = self.retry_policy else { return };
        // Visit chains ascending by key: per-chain updates are independent,
        // but a deterministic visit order keeps the scan auditable and
        // hash order out of the loop entirely.
        let mut allowed_by_key: Vec<((CellId, AttributeId), u64)> =
            // craqr-lint: allow(R2): collected into a Vec and sorted before use
            self.last_allowed.iter().map(|(k, v)| (*k, *v)).collect();
        allowed_by_key.sort_unstable_by_key(|(key, _)| *key);
        for (key, allowed) in allowed_by_key {
            let got = counts.get(&key).copied().unwrap_or(0);
            let state = self.retry.entry(key).or_default();
            let short = allowed > 0 && (got as f64) < policy.shortfall_threshold * (allowed as f64);
            if short && state.attempts < policy.max_attempts {
                // `got` can exceed `allowed` when delayed or duplicated
                // responses from earlier epochs land here, hence saturating.
                let shortfall = allowed.saturating_sub(got);
                state.pending = ((shortfall as f64) * policy.backoff.powi(state.attempts as i32))
                    .floor() as u64;
                state.attempts += 1;
                self.retry_attempts += 1;
            } else {
                *state = RetryState::default();
            }
        }
    }

    /// Sends this epoch's acquisition requests for every demanded
    /// (cell, attribute) chain.
    ///
    /// `demands` comes from [`crate::plan::Fabricator::demands`]; budgets
    /// for chains that disappeared are pruned so deleted queries stop
    /// costing requests.
    pub fn dispatch_epoch(
        &mut self,
        crowd: &mut Crowd,
        grid: &Grid,
        demands: &[(CellId, AttributeId, f64)],
    ) -> DispatchStats {
        self.dispatch_epoch_tenants(crowd, grid, demands, None)
    }

    /// [`RequestResponseHandler::dispatch_epoch`] under a tenant-charging
    /// context: each chain's drawn request count is clamped to what its
    /// owning tenants' pools can still cover this epoch
    /// ([`TenantRegistry::allow`]), the dispatched count is charged to
    /// those tenants by share, and the withheld remainder is reported as
    /// [`DispatchStats::throttled`]. With `tenancy = None` this is
    /// bit-identical to the plain dispatch.
    pub fn dispatch_epoch_tenants(
        &mut self,
        crowd: &mut Crowd,
        grid: &Grid,
        demands: &[(CellId, AttributeId, f64)],
        tenancy: Tenancy<'_>,
    ) -> DispatchStats {
        let (orders, mut stats) = self.issue_epoch_orders(Some(grid), demands, tenancy);
        let sent = execute_orders(crowd, &orders);
        stats.sent = sent;
        self.record_sent(sent);
        stats
    }

    /// The issuing half of a dispatch: prunes state for dematerialized
    /// chains, draws every demanded chain's budget (plus pending retry
    /// top-ups), clamps and charges against tenant pools, and materializes
    /// incentive entries — every handler- and registry-side mutation of a
    /// dispatch, in the exact order the fused loop performed them — but
    /// touches no crowd. The crowd-side sends come back as [`SendOrder`]s
    /// for [`execute_orders`]; with `grid = None` (the detached-replay
    /// path) order collection is skipped entirely while the handler state
    /// still evolves identically.
    ///
    /// `stats.sent` is left at 0; fold the execution outcome back with
    /// [`RequestResponseHandler::record_sent`].
    pub fn issue_epoch_orders(
        &mut self,
        grid: Option<&Grid>,
        demands: &[(CellId, AttributeId, f64)],
        mut tenancy: Tenancy<'_>,
    ) -> (Vec<SendOrder>, DispatchStats) {
        // Prune state for dematerialized chains.
        let live: std::collections::HashSet<(CellId, AttributeId)> =
            demands.iter().map(|(c, a, _)| (*c, *a)).collect();
        self.budgets.retain(|k, _| live.contains(k));
        self.incentives.retain(|k, _| live.contains(k));
        self.retry.retain(|k, _| live.contains(k));
        self.last_allowed.clear();

        let mut orders = Vec::new();
        let mut stats = DispatchStats::default();
        for (cell, attr, _rate) in demands {
            let key = (*cell, *attr);
            let budget =
                self.budgets.entry(key).or_insert_with(|| Budget::new(self.initial_budget));
            let n = budget.draw_requests();
            let extra = self.take_retry_pending(key);
            let want = n + extra;
            if want == 0 {
                continue;
            }
            // Tenant clamping and charging evolve identically whether or
            // not orders are collected — the registry's epoch meters are
            // handler-side state a replay must reproduce bit-for-bit.
            let allowed = clamp_and_charge(&mut tenancy, key, want);
            stats.requested += want as u64;
            stats.throttled += (want - allowed) as u64;
            self.retries_requested += extra as u64;
            if self.retry_policy.is_some() {
                self.last_allowed.insert(key, allowed as u64);
            }
            if allowed == 0 {
                continue;
            }
            let incentive = self.incentives.entry(key).or_default().current(&self.incentive_policy);
            if let Some(grid) = grid {
                orders.push(SendOrder {
                    cell: *cell,
                    attr: *attr,
                    rect: grid.cell_rect(*cell),
                    allowed,
                    incentive,
                });
            }
        }
        self.total_requested += stats.requested;
        (orders, stats)
    }

    /// Folds an executed epoch's crowd-side outcome into the running
    /// totals — the counterpart of the `stats.sent` accumulation the
    /// fused dispatch loop performed inline.
    pub fn record_sent(&mut self, sent: u64) {
        self.total_sent += sent;
    }

    /// The crowd-detached twin of
    /// [`RequestResponseHandler::dispatch_epoch`], for replaying a
    /// recorded run: budgets are pruned and drawn **identically** to a
    /// live dispatch (so the handler's state evolves bit-for-bit the same
    /// way), but no request is sent anywhere — the crowd-side outcome
    /// `sent` comes from the run log instead of a live crowd.
    pub fn dispatch_epoch_detached(
        &mut self,
        demands: &[(CellId, AttributeId, f64)],
        sent: u64,
        tenancy: Tenancy<'_>,
    ) -> DispatchStats {
        let (_, mut stats) = self.issue_epoch_orders(None, demands, tenancy);
        stats.sent = sent;
        self.record_sent(sent);
        stats
    }

    /// Applies one budget-tuning round from the flatten reports
    /// (Section V "Budget Tuning") and escalates incentives on exhaustion
    /// (Section VI).
    pub fn tune(
        &mut self,
        reports: &[(CellId, AttributeId, Arc<FlattenReport>, f64)],
    ) -> Vec<TuneEvent> {
        let mut events = Vec::with_capacity(reports.len());
        for (cell, attr, report, _rate) in reports {
            if report.batches() == 0 {
                continue; // nothing observed yet
            }
            let key = (*cell, *attr);
            let nv = report.smoothed_nv().unwrap_or(0.0).clamp(0.0, 100.0);
            let budget =
                self.budgets.entry(key).or_insert_with(|| Budget::new(self.initial_budget));
            let outcome = self.tuner.tune(budget, nv);
            if outcome == TuneOutcome::Exhausted {
                self.exhausted_events += 1;
            }
            self.incentives.entry(key).or_default().update(&self.incentive_policy, outcome);
            events.push(TuneEvent {
                cell: *cell,
                attr: *attr,
                nv,
                outcome,
                budget_after: budget.requests_per_epoch,
            });
        }
        events
    }

    /// Current budget for a chain (requests per epoch).
    pub fn budget_of(&self, cell: CellId, attr: AttributeId) -> Option<f64> {
        self.budgets.get(&(cell, attr)).map(|b| b.requests_per_epoch)
    }

    /// Every live chain's current budget, by value — the snapshot behind
    /// [`crate::EpochObservation`]'s budget view. Map-shaped (lookups
    /// only, never iterated into anything ordered), so the HashMap's
    /// arbitrary internal order is inert.
    pub fn budget_snapshot(&self) -> HashMap<(CellId, AttributeId), f64> {
        // craqr-lint: allow(R2): hash-to-hash copy; the snapshot is only
        // ever probed by key, so iteration order cannot leak anywhere
        self.budgets.iter().map(|(k, b)| (*k, b.requests_per_epoch)).collect()
    }

    /// Overwrites a **live** chain's budget (requests per epoch) — the
    /// replanning actuator of the adaptive control loop. The chain's
    /// fractional-rounding credit is preserved so a replan does not
    /// perturb the long-run rate accounting.
    ///
    /// Returns whether the (cell, attribute) key was live. A replan can
    /// race a chain retirement (the query was deleted between the
    /// observation and the actuation); mutating an unknown key used to
    /// insert a phantom `Budget` entry that dangled until the next
    /// dispatch pruned it — now the stale actuation is a signalled no-op
    /// instead, and the caller can surface it
    /// ([`crate::EpochReport::stale_actions`]).
    ///
    /// # Panics
    /// Panics on a negative or non-finite budget.
    #[track_caller]
    #[must_use = "a false return means the chain is retired and nothing was actuated"]
    pub fn set_budget(&mut self, cell: CellId, attr: AttributeId, requests_per_epoch: f64) -> bool {
        assert!(
            requests_per_epoch.is_finite() && requests_per_epoch >= 0.0,
            "budget must be >= 0, got {requests_per_epoch}"
        );
        match self.budgets.get_mut(&(cell, attr)) {
            Some(budget) => {
                budget.requests_per_epoch = requests_per_epoch;
                true
            }
            None => false,
        }
    }

    /// Current incentive for a chain.
    pub fn incentive_of(&self, cell: CellId, attr: AttributeId) -> f64 {
        self.incentives
            .get(&(cell, attr))
            .map_or(self.incentive_policy.base, |s| s.current(&self.incentive_policy))
    }

    /// `(requested, sent)` totals since creation.
    pub fn totals(&self) -> (u64, u64) {
        (self.total_requested, self.total_sent)
    }

    /// Number of budget-exhaustion events so far ("accept the feasible
    /// rate or pay more").
    pub fn exhausted_events(&self) -> u64 {
        self.exhausted_events
    }

    /// The tuner in use.
    pub fn tuner(&self) -> &BudgetTuner {
        &self.tuner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craqr_geom::Rect;
    use craqr_sensing::{AttrValue, CrowdConfig, Mobility, Placement, PopulationConfig};

    fn crowd() -> Crowd {
        let region = Rect::with_size(4.0, 4.0);
        let mut c = Crowd::new(CrowdConfig {
            region,
            population: PopulationConfig {
                size: 400,
                placement: Placement::Uniform,
                mobility: Mobility::Stationary,
                human_fraction: 0.0,
            },
            seed: 3,
        });
        c.register_field(
            AttributeId(0),
            Box::new(craqr_sensing::fields::ConstantField(AttrValue::Float(1.0))),
        );
        c
    }

    fn handler() -> RequestResponseHandler {
        RequestResponseHandler::new(BudgetTuner::default(), IncentivePolicy::default(), 10.0)
    }

    #[test]
    fn dispatch_creates_budgets_and_sends() {
        let mut h = handler();
        let mut c = crowd();
        let grid = Grid::new(c.region(), 4);
        let demands = vec![(CellId::new(0, 0), AttributeId(0), 2.0)];
        let stats = h.dispatch_epoch(&mut c, &grid, &demands);
        assert_eq!(stats.requested, 10);
        assert!(stats.sent > 0);
        assert_eq!(h.budget_of(CellId::new(0, 0), AttributeId(0)), Some(10.0));
    }

    #[test]
    fn dispatch_prunes_stale_budgets() {
        let mut h = handler();
        let mut c = crowd();
        let grid = Grid::new(c.region(), 4);
        let d1 = vec![(CellId::new(0, 0), AttributeId(0), 2.0)];
        h.dispatch_epoch(&mut c, &grid, &d1);
        assert!(h.budget_of(CellId::new(0, 0), AttributeId(0)).is_some());
        // Next epoch the demand is gone.
        h.dispatch_epoch(&mut c, &grid, &[]);
        assert!(h.budget_of(CellId::new(0, 0), AttributeId(0)).is_none());
    }

    #[test]
    fn tuning_raises_budget_on_violations() {
        let mut h = handler();
        let report = FlattenReport::new(0.5);
        report.record_batch(80.0, 100, 100);
        let reports = vec![(CellId::new(1, 1), AttributeId(0), report, 2.0)];
        let events = h.tune(&reports);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].outcome, TuneOutcome::Increased);
        assert_eq!(events[0].budget_after, 12.0);
    }

    #[test]
    fn tuning_skips_chains_without_batches() {
        let mut h = handler();
        let report = FlattenReport::new(0.5);
        let reports = vec![(CellId::new(1, 1), AttributeId(0), report, 2.0)];
        assert!(h.tune(&reports).is_empty());
    }

    #[test]
    fn exhaustion_escalates_incentive() {
        let tuner = BudgetTuner { max_budget: 10.0, ..Default::default() };
        let mut h = RequestResponseHandler::new(tuner, IncentivePolicy::default(), 10.0);
        let report = FlattenReport::new(1.0);
        report.record_batch(100.0, 10, 10);
        let key = (CellId::new(0, 0), AttributeId(0));
        let reports = vec![(key.0, key.1, report, 2.0)];
        assert_eq!(h.incentive_of(key.0, key.1), 0.0);
        h.tune(&reports); // at cap already → exhausted
        assert_eq!(h.exhausted_events(), 1);
        assert!(h.incentive_of(key.0, key.1) > 0.0);
    }
}
