//! The crowdsensed tuple.

use craqr_geom::SpaceTimePoint;
use craqr_sensing::{AttrValue, AttributeId, SensorId, SensorResponse};
use serde::{Deserialize, Serialize};

/// A tuple of attribute `A⟨j⟩`: `(t⟨j⟩ᵢ, x⟨j⟩ᵢ, y⟨j⟩ᵢ, a⟨j⟩ᵢ)` plus the
/// unique identifier `i` ("unique across sensors", Section II) and the
/// originating sensor.
///
/// Identifiers are assigned by the server at ingestion, which is the only
/// place with a global view.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrowdTuple {
    /// The unique tuple identifier `i`.
    pub id: u64,
    /// The attribute `A⟨j⟩` this tuple observes.
    pub attr: AttributeId,
    /// Space-time coordinates of the observation.
    pub point: SpaceTimePoint,
    /// The observed value `a⟨j⟩ᵢ`.
    pub value: AttrValue,
    /// The sensor that produced the observation.
    pub sensor: SensorId,
}

impl CrowdTuple {
    /// Builds a tuple from a sensor response, assigning it identifier `id`.
    pub fn from_response(id: u64, response: &SensorResponse) -> Self {
        Self {
            id,
            attr: response.measurement.attr,
            point: response.measurement.point,
            value: response.measurement.value,
            sensor: response.sensor,
        }
    }

    /// `true` when the coordinates are finite (malformed tuples are dropped
    /// at ingestion; see the Section VI error discussion).
    pub fn is_well_formed(&self) -> bool {
        self.point.is_finite()
    }
}

/// Assigns dense unique identifiers to incoming responses — the server-side
/// ingestion counter.
#[derive(Debug, Default, Clone)]
pub struct TupleIdGen {
    next: u64,
}

impl TupleIdGen {
    /// A generator starting at id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The next unique id.
    #[inline]
    pub fn next_id(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }

    /// Converts a batch of responses into tuples with fresh ids, dropping
    /// malformed ones.
    pub fn ingest(&mut self, responses: &[SensorResponse]) -> Vec<CrowdTuple> {
        responses
            .iter()
            .map(|r| CrowdTuple::from_response(self.next_id(), r))
            .filter(CrowdTuple::is_well_formed)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craqr_sensing::Measurement;

    fn response(t: f64, x: f64) -> SensorResponse {
        SensorResponse {
            sensor: SensorId(5),
            measurement: Measurement {
                attr: AttributeId(1),
                point: SpaceTimePoint::new(t, x, 0.5),
                value: AttrValue::Bool(true),
            },
            issued_at: 0.0,
        }
    }

    #[test]
    fn from_response_copies_fields() {
        let r = response(3.0, 1.0);
        let t = CrowdTuple::from_response(7, &r);
        assert_eq!(t.id, 7);
        assert_eq!(t.attr, AttributeId(1));
        assert_eq!(t.point.t, 3.0);
        assert_eq!(t.sensor, SensorId(5));
        assert!(t.is_well_formed());
    }

    #[test]
    fn idgen_assigns_dense_unique_ids() {
        let mut g = TupleIdGen::new();
        let tuples = g.ingest(&[response(1.0, 1.0), response(2.0, 2.0), response(3.0, 3.0)]);
        let ids: Vec<u64> = tuples.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let more = g.ingest(&[response(4.0, 4.0)]);
        assert_eq!(more[0].id, 3);
    }

    #[test]
    fn malformed_tuples_are_dropped_at_ingestion() {
        let mut g = TupleIdGen::new();
        let bad = response(f64::NAN, 1.0);
        let tuples = g.ingest(&[response(1.0, 1.0), bad]);
        assert_eq!(tuples.len(), 1);
    }
}
