//! Acquisitional queries — Section III.
//!
//! "The most simplest acquisitional queries … will have to provide at least
//! the following information: (1) the attribute they are interested in
//! acquiring, (2) the region or sub-region from which the attribute should
//! be acquired, (3) the rate (per unit area and time) at which this
//! attribute should be acquired."

mod catalog;
mod parser;

pub use catalog::AttributeCatalog;
pub use parser::{parse_query, ParseError};

use craqr_geom::Rect;
use craqr_sensing::AttributeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a standing acquisitional query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryId(pub u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// A typed acquisitional query: the triple the paper's `Q⟨1⟩` example
/// carries ("Acquire the attribute A⟨1⟩ = rain from region R′ ⊂ R at the
/// rate of 10 /km²/min"), plus the tenant that owns (and pays for) it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcquisitionQuery {
    /// The attribute `A⟨j⟩` to acquire.
    pub attr: AttributeId,
    /// The query region `R′ ⊆ R`.
    pub region: Rect,
    /// The requested rate λ (tuples / km² / min).
    pub rate: f64,
    /// The owning tenant whose budget pool the query draws from
    /// ([`crate::tenant::TenantId::DEFAULT`] in single-owner servers).
    pub tenant: crate::tenant::TenantId,
}

impl AcquisitionQuery {
    /// Creates a query owned by the implicit default tenant.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite rate.
    #[track_caller]
    pub fn new(attr: AttributeId, region: Rect, rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "query rate must be > 0, got {rate}");
        Self { attr, region, rate, tenant: crate::tenant::TenantId::DEFAULT }
    }

    /// The same query owned by `tenant`.
    pub fn owned_by(self, tenant: crate::tenant::TenantId) -> Self {
        Self { tenant, ..self }
    }

    /// Expected number of tuples this query should receive over `minutes`.
    pub fn expected_tuples(&self, minutes: f64) -> f64 {
        self.rate * self.region.area() * minutes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_tuples_scales_with_area_and_time() {
        let q = AcquisitionQuery::new(AttributeId(0), Rect::with_size(2.0, 3.0), 10.0);
        assert!((q.expected_tuples(5.0) - 10.0 * 6.0 * 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "rate must be > 0")]
    fn zero_rate_rejected() {
        let _ = AcquisitionQuery::new(AttributeId(0), Rect::with_size(1.0, 1.0), 0.0);
    }

    #[test]
    fn query_id_display() {
        assert_eq!(QueryId(3).to_string(), "Q3");
    }
}
