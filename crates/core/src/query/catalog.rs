//! The attribute catalog.

use craqr_sensing::AttributeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Maps human-readable attribute names (`rain`, `temp`, …) to
/// [`AttributeId`]s and records whether each is human-sensed or
/// sensor-sensed (Section II's two attribute classes).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AttributeCatalog {
    names: Vec<(String, bool)>,
    by_name: HashMap<String, AttributeId>,
}

impl AttributeCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an attribute, returning its id. `human_sensed` marks
    /// attributes "that are typically hard to sense with a sensor".
    ///
    /// # Panics
    /// Panics when the name is empty or already registered.
    #[track_caller]
    pub fn register(&mut self, name: &str, human_sensed: bool) -> AttributeId {
        assert!(!name.is_empty(), "attribute name must not be empty");
        assert!(!self.by_name.contains_key(name), "attribute '{name}' already registered");
        let id = AttributeId(self.names.len() as u16);
        self.names.push((name.to_string(), human_sensed));
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up an attribute by name.
    pub fn lookup(&self, name: &str) -> Option<AttributeId> {
        self.by_name.get(name).copied()
    }

    /// The name of an attribute id.
    pub fn name_of(&self, id: AttributeId) -> Option<&str> {
        self.names.get(id.0 as usize).map(|(n, _)| n.as_str())
    }

    /// `true` when the attribute is human-sensed.
    pub fn is_human_sensed(&self, id: AttributeId) -> Option<bool> {
        self.names.get(id.0 as usize).map(|(_, h)| *h)
    }

    /// Number of registered attributes `k`.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when no attribute is registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name, human_sensed)`.
    pub fn iter(&self) -> impl Iterator<Item = (AttributeId, &str, bool)> {
        self.names.iter().enumerate().map(|(i, (n, h))| (AttributeId(i as u16), n.as_str(), *h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut c = AttributeCatalog::new();
        let rain = c.register("rain", true);
        let temp = c.register("temp", false);
        assert_eq!(c.lookup("rain"), Some(rain));
        assert_eq!(c.lookup("temp"), Some(temp));
        assert_eq!(c.lookup("snow"), None);
        assert_eq!(c.name_of(rain), Some("rain"));
        assert_eq!(c.is_human_sensed(rain), Some(true));
        assert_eq!(c.is_human_sensed(temp), Some(false));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn iteration_order_is_registration_order() {
        let mut c = AttributeCatalog::new();
        c.register("a", true);
        c.register("b", false);
        let collected: Vec<_> = c.iter().map(|(_, n, _)| n.to_string()).collect();
        assert_eq!(collected, vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_name_rejected() {
        let mut c = AttributeCatalog::new();
        c.register("rain", true);
        c.register("rain", false);
    }
}
