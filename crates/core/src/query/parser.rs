//! A declarative surface syntax for acquisitional queries.
//!
//! The paper motivates "declarative specification of data acquisition
//! queries" (Section I). The grammar is deliberately the smallest thing
//! that carries the query triple:
//!
//! ```text
//! ACQUIRE <attr> FROM RECT(<x0>, <y0>, <x1>, <y1>) RATE <λ> [PER KM2 PER MIN]
//! ```
//!
//! Keywords are case-insensitive; whitespace is free-form. The example from
//! the paper reads:
//!
//! ```text
//! ACQUIRE rain FROM RECT(0, 0, 2, 3) RATE 10 PER KM2 PER MIN
//! ```

use super::{AcquisitionQuery, AttributeCatalog};
use craqr_geom::Rect;
use std::fmt;

/// Query-text rejection, with enough context to fix the text.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// A keyword was missing or misplaced.
    Expected(&'static str, String),
    /// The attribute is not in the catalog.
    UnknownAttribute(String),
    /// A number failed to parse.
    BadNumber(String),
    /// The rectangle is degenerate or inverted.
    BadRegion(String),
    /// The rate is non-positive.
    BadRate(f64),
    /// Trailing tokens after a complete query.
    TrailingInput(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Expected(what, got) => write!(f, "expected {what}, found '{got}'"),
            ParseError::UnknownAttribute(a) => write!(f, "unknown attribute '{a}'"),
            ParseError::BadNumber(s) => write!(f, "cannot parse number '{s}'"),
            ParseError::BadRegion(s) => write!(f, "bad region: {s}"),
            ParseError::BadRate(r) => write!(f, "rate must be positive, got {r}"),
            ParseError::TrailingInput(s) => write!(f, "unexpected trailing input '{s}'"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Tokenizer: splits on whitespace and the punctuation `( ) ,`, keeping the
/// punctuation as its own tokens.
fn tokenize(input: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in input.chars() {
        match ch {
            '(' | ')' | ',' => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
                tokens.push(ch.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

struct Cursor {
    tokens: Vec<String>,
    pos: usize,
}

impl Cursor {
    fn next(&mut self) -> Option<&str> {
        let t = self.tokens.get(self.pos)?;
        self.pos += 1;
        Some(t)
    }

    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(String::as_str)
    }

    fn expect_keyword(&mut self, kw: &'static str) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t.eq_ignore_ascii_case(kw) => Ok(()),
            Some(t) => Err(ParseError::Expected(kw, t.to_string())),
            None => Err(ParseError::Expected(kw, "end of input".to_string())),
        }
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t == p => Ok(()),
            Some(t) => Err(ParseError::Expected(p, t.to_string())),
            None => Err(ParseError::Expected(p, "end of input".to_string())),
        }
    }

    fn expect_number(&mut self) -> Result<f64, ParseError> {
        match self.next() {
            Some(t) => t.parse::<f64>().map_err(|_| ParseError::BadNumber(t.to_string())),
            None => Err(ParseError::BadNumber("end of input".to_string())),
        }
    }
}

/// Parses one query against a catalog.
pub fn parse_query(
    input: &str,
    catalog: &AttributeCatalog,
) -> Result<AcquisitionQuery, ParseError> {
    let mut cur = Cursor { tokens: tokenize(input), pos: 0 };

    cur.expect_keyword("ACQUIRE")?;
    let attr_name = cur
        .next()
        .ok_or(ParseError::Expected("attribute name", "end of input".to_string()))?
        .to_string();
    let attr = catalog
        .lookup(&attr_name)
        .ok_or_else(|| ParseError::UnknownAttribute(attr_name.clone()))?;

    cur.expect_keyword("FROM")?;
    cur.expect_keyword("RECT")?;
    cur.expect_punct("(")?;
    let x0 = cur.expect_number()?;
    cur.expect_punct(",")?;
    let y0 = cur.expect_number()?;
    cur.expect_punct(",")?;
    let x1 = cur.expect_number()?;
    cur.expect_punct(",")?;
    let y1 = cur.expect_number()?;
    cur.expect_punct(")")?;
    if !(x1 > x0 && y1 > y0) {
        return Err(ParseError::BadRegion(format!("[{x0},{x1})x[{y0},{y1}) has no area")));
    }

    cur.expect_keyword("RATE")?;
    let rate = cur.expect_number()?;
    if !(rate.is_finite() && rate > 0.0) {
        return Err(ParseError::BadRate(rate));
    }

    // Optional unit suffix: PER KM2 PER MIN.
    if cur.peek().is_some_and(|t| t.eq_ignore_ascii_case("PER")) {
        cur.expect_keyword("PER")?;
        cur.expect_keyword("KM2")?;
        cur.expect_keyword("PER")?;
        cur.expect_keyword("MIN")?;
    }

    if let Some(extra) = cur.peek() {
        return Err(ParseError::TrailingInput(extra.to_string()));
    }

    Ok(AcquisitionQuery::new(attr, Rect::new(x0, y0, x1, y1), rate))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> AttributeCatalog {
        let mut c = AttributeCatalog::new();
        c.register("rain", true);
        c.register("temp", false);
        c
    }

    #[test]
    fn parses_the_papers_example() {
        let q =
            parse_query("ACQUIRE rain FROM RECT(0, 0, 2, 3) RATE 10 PER KM2 PER MIN", &catalog())
                .unwrap();
        assert_eq!(q.attr, catalog().lookup("rain").unwrap());
        assert!(q.region.approx_eq(&Rect::new(0.0, 0.0, 2.0, 3.0)));
        assert_eq!(q.rate, 10.0);
    }

    #[test]
    fn unit_suffix_is_optional() {
        let q = parse_query("ACQUIRE temp FROM RECT(1,1,4,4) RATE 2.5", &catalog()).unwrap();
        assert_eq!(q.rate, 2.5);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse_query("acquire Rain from rect(0,0,1,1) rate 1", &{
            let mut c = AttributeCatalog::new();
            c.register("Rain", true);
            c
        })
        .unwrap();
        assert_eq!(q.rate, 1.0);
    }

    #[test]
    fn negative_coordinates_and_floats_parse() {
        let q = parse_query("ACQUIRE temp FROM RECT(-2.5, -1.0, 0.5, 3.25) RATE 0.75", &catalog())
            .unwrap();
        assert!(q.region.approx_eq(&Rect::new(-2.5, -1.0, 0.5, 3.25)));
    }

    #[test]
    fn unknown_attribute_is_reported() {
        let err = parse_query("ACQUIRE snow FROM RECT(0,0,1,1) RATE 1", &catalog()).unwrap_err();
        assert_eq!(err, ParseError::UnknownAttribute("snow".to_string()));
        assert!(err.to_string().contains("snow"));
    }

    #[test]
    fn inverted_region_is_rejected() {
        let err = parse_query("ACQUIRE rain FROM RECT(2,0,1,1) RATE 1", &catalog()).unwrap_err();
        assert!(matches!(err, ParseError::BadRegion(_)));
    }

    #[test]
    fn non_positive_rate_is_rejected() {
        let err = parse_query("ACQUIRE rain FROM RECT(0,0,1,1) RATE 0", &catalog()).unwrap_err();
        assert_eq!(err, ParseError::BadRate(0.0));
        let err = parse_query("ACQUIRE rain FROM RECT(0,0,1,1) RATE -3", &catalog()).unwrap_err();
        assert_eq!(err, ParseError::BadRate(-3.0));
    }

    #[test]
    fn malformed_numbers_are_rejected() {
        let err = parse_query("ACQUIRE rain FROM RECT(a,0,1,1) RATE 1", &catalog()).unwrap_err();
        assert_eq!(err, ParseError::BadNumber("a".to_string()));
    }

    #[test]
    fn missing_keyword_is_reported() {
        let err = parse_query("ACQUIRE rain RECT(0,0,1,1) RATE 1", &catalog()).unwrap_err();
        assert!(matches!(err, ParseError::Expected("FROM", _)));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let err =
            parse_query("ACQUIRE rain FROM RECT(0,0,1,1) RATE 1 NOW", &catalog()).unwrap_err();
        assert_eq!(err, ParseError::TrailingInput("NOW".to_string()));
    }

    #[test]
    fn empty_input_is_rejected() {
        let err = parse_query("", &catalog()).unwrap_err();
        assert!(matches!(err, ParseError::Expected("ACQUIRE", _)));
    }
}
