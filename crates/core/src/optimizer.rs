//! Topology cost modelling — the Section VI "query optimization" sketch.
//!
//! "We should define the cost of processing a single query, and prepare an
//! execution topology that minimizes this cost." The dominant cost in a
//! PMAT topology is tuples-processed-per-operator (every operator is a
//! constant-time filter), so the model here counts expected tuples per
//! km²·min flowing into each operator, parameterized by the chain shape.
//! The `e10_topology` bench validates the model against measured counts.

use crate::plan::TopologyShape;
use serde::{Deserialize, Serialize};

/// Expected tuples processed per km²·min by the `T`-operators of a chain
/// topology with flatten output `f_rate` and tap rates `rates` (descending).
///
/// In a chain, the `T` at position `i` processes the previous tap's output:
/// `f_rate, λ₁, λ₂, …, λ_{k−1}`.
///
/// # Panics
/// Panics when `rates` is not sorted descending or exceeds `f_rate`.
#[track_caller]
pub fn chain_processing_rate(f_rate: f64, rates: &[f64]) -> f64 {
    validate(f_rate, rates);
    if rates.is_empty() {
        return 0.0;
    }
    f_rate + rates[..rates.len() - 1].iter().sum::<f64>()
}

/// Expected tuples processed per km²·min by the `T`-operators of a star
/// topology: every `T` drinks from the flatten output directly, so the
/// total is `k · f_rate`.
///
/// # Panics
/// Panics when `rates` is not sorted descending or exceeds `f_rate`.
#[track_caller]
pub fn star_processing_rate(f_rate: f64, rates: &[f64]) -> f64 {
    validate(f_rate, rates);
    f_rate * rates.len() as f64
}

/// Expected tuples processed per km²·min when every query is processed
/// *from scratch* (no shared topology): each query pays its own flatten
/// pass over the raw stream plus its own thin.
///
/// `raw_rate` is the unflattened arrival rate entering the system.
///
/// # Panics
/// Panics on a negative raw rate.
#[track_caller]
pub fn naive_processing_rate(raw_rate: f64, rates: &[f64]) -> f64 {
    assert!(raw_rate >= 0.0, "raw rate must be >= 0");
    // Per query: an F pass over the raw stream + a T pass over its output.
    rates.iter().map(|r| raw_rate + r.max(0.0)).sum()
}

/// Shared-topology total: one F pass over the raw stream plus the
/// shape-dependent `T` costs.
pub fn shared_processing_rate(
    raw_rate: f64,
    f_rate: f64,
    rates: &[f64],
    shape: TopologyShape,
) -> f64 {
    let t_cost = match shape {
        TopologyShape::Chain => chain_processing_rate(f_rate, rates),
        TopologyShape::Star => star_processing_rate(f_rate, rates),
    };
    raw_rate + t_cost
}

/// Pipeline depth (operator hops) a query at tap position `pos` (0-based)
/// experiences: chains trade per-tuple work for latency, stars the
/// opposite — the paper's "response time" optimization axis.
pub fn pipeline_depth(shape: TopologyShape, pos: usize) -> usize {
    match shape {
        TopologyShape::Chain => 2 + pos, // F, then pos+1 T's
        TopologyShape::Star => 2,        // F, then its own T
    }
}

/// Cost-based shape recommendation for one cell, trading tuples processed
/// against worst-case pipeline depth (weighted by `depth_weight` tuples per
/// hop — 0 recovers pure throughput optimization, in which the chain is
/// never worse).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShapeChoice {
    /// The recommended shape.
    pub shape: TopologyShapeTag,
    /// Modelled chain cost (tuples/km²·min + depth penalty).
    pub chain_cost: f64,
    /// Modelled star cost.
    pub star_cost: f64,
}

/// Serializable mirror of [`TopologyShape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyShapeTag {
    /// Chain shape.
    Chain,
    /// Star shape.
    Star,
}

impl From<TopologyShapeTag> for TopologyShape {
    fn from(tag: TopologyShapeTag) -> Self {
        match tag {
            TopologyShapeTag::Chain => TopologyShape::Chain,
            TopologyShapeTag::Star => TopologyShape::Star,
        }
    }
}

/// Chooses a per-cell topology shape under the cost model.
pub fn choose_shape(f_rate: f64, rates: &[f64], depth_weight: f64) -> ShapeChoice {
    let chain_cost = chain_processing_rate(f_rate, rates)
        + depth_weight * pipeline_depth(TopologyShape::Chain, rates.len().saturating_sub(1)) as f64;
    let star_cost = star_processing_rate(f_rate, rates)
        + depth_weight * pipeline_depth(TopologyShape::Star, 0) as f64;
    ShapeChoice {
        shape: if chain_cost <= star_cost {
            TopologyShapeTag::Chain
        } else {
            TopologyShapeTag::Star
        },
        chain_cost,
        star_cost,
    }
}

#[track_caller]
fn validate(f_rate: f64, rates: &[f64]) {
    assert!(f_rate >= 0.0, "f_rate must be >= 0");
    for pair in rates.windows(2) {
        assert!(pair[0] >= pair[1], "rates must be sorted descending: {rates:?}");
    }
    if let Some(&first) = rates.first() {
        assert!(first <= f_rate * (1.0 + 1e-9), "first tap {first} exceeds F rate {f_rate}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_cost_counts_cascading_inputs() {
        // F=8, taps 8,4,2: T inputs are 8 (from F), 8, 4.
        let c = chain_processing_rate(8.0, &[8.0, 4.0, 2.0]);
        assert!((c - (8.0 + 8.0 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn star_cost_is_k_times_f() {
        let c = star_processing_rate(8.0, &[8.0, 4.0, 2.0]);
        assert!((c - 24.0).abs() < 1e-12);
    }

    #[test]
    fn chain_never_costs_more_than_star() {
        for rates in [vec![5.0], vec![5.0, 1.0], vec![5.0, 4.0, 3.0, 2.0, 1.0]] {
            let chain = chain_processing_rate(5.0, &rates);
            let star = star_processing_rate(5.0, &rates);
            assert!(chain <= star + 1e-12, "{rates:?}: chain {chain} star {star}");
        }
    }

    #[test]
    fn empty_chain_is_free() {
        assert_eq!(chain_processing_rate(5.0, &[]), 0.0);
        assert_eq!(star_processing_rate(5.0, &[]), 0.0);
    }

    #[test]
    fn sharing_beats_naive_with_multiple_queries() {
        let raw = 20.0;
        let rates = [5.0, 4.0, 3.0, 2.0];
        let naive = naive_processing_rate(raw, &rates);
        let shared = shared_processing_rate(raw, 5.0, &rates, TopologyShape::Chain);
        assert!(shared < naive * 0.5, "shared {shared} naive {naive}");
    }

    #[test]
    fn single_query_sharing_is_break_even() {
        let raw = 20.0;
        let rates = [5.0];
        let naive = naive_processing_rate(raw, &rates);
        let shared = shared_processing_rate(raw, 5.0, &rates, TopologyShape::Chain);
        assert!((naive - shared).abs() < 1e-9);
    }

    #[test]
    fn depth_model() {
        assert_eq!(pipeline_depth(TopologyShape::Chain, 0), 2);
        assert_eq!(pipeline_depth(TopologyShape::Chain, 3), 5);
        assert_eq!(pipeline_depth(TopologyShape::Star, 3), 2);
    }

    #[test]
    fn shape_choice_flips_with_depth_weight() {
        let rates = vec![5.0, 4.9, 4.8, 4.7, 4.6, 4.5];
        // Pure throughput: chain wins.
        assert_eq!(choose_shape(5.0, &rates, 0.0).shape, TopologyShapeTag::Chain);
        // Heavy depth penalty: star wins (rates so close that chain saves
        // little throughput).
        assert_eq!(choose_shape(5.0, &rates, 10.0).shape, TopologyShapeTag::Star);
    }

    #[test]
    #[should_panic(expected = "sorted descending")]
    fn unsorted_rates_rejected() {
        let _ = chain_processing_rate(5.0, &[1.0, 2.0]);
    }
}
