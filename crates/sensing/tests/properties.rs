//! Property tests for the crowd simulator: containment, determinism, and
//! response-behaviour laws under randomized parameters.

use craqr_geom::Rect;
use craqr_sensing::fields::ConstantField;
use craqr_sensing::transport::{decode_response, encode_response};
use craqr_sensing::{
    AttrValue, AttributeId, Crowd, CrowdConfig, Measurement, Mobility, Placement, PopulationConfig,
    ResponseModel, SensorId, SensorResponse,
};
use craqr_stats::seeded_rng;
use proptest::prelude::*;

fn mobility_strategy() -> impl Strategy<Value = Mobility> {
    prop_oneof![
        Just(Mobility::Stationary),
        (0.01f64..2.0).prop_map(|sigma| Mobility::RandomWalk { sigma }),
        (0.01f64..1.0, 0.0f64..10.0).prop_map(|(s, p)| Mobility::random_waypoint(s, p)),
        (0.0f64..0.95, 0.0f64..1.0, 0.0f64..0.5)
            .prop_map(|(a, m, s)| Mobility::gauss_markov(a, m, s)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_mobility_model_stays_inside_every_region(
        mut mobility in mobility_strategy(),
        w in 1.0f64..30.0,
        h in 1.0f64..30.0,
        dt in 0.1f64..5.0,
        seed in any::<u64>(),
    ) {
        let region = Rect::with_size(w, h);
        let mut rng = seeded_rng(seed);
        let mut pos = (w * 0.5, h * 0.5);
        for _ in 0..200 {
            pos = mobility.step(pos, dt, &region, &mut rng);
            prop_assert!(region.contains(pos.0, pos.1), "escaped to {pos:?}");
        }
    }

    #[test]
    fn response_probability_is_monotone_in_incentive(
        base in 0.0f64..1.0,
        sensitivity in 0.0f64..5.0,
        i1 in 0.0f64..10.0,
        di in 0.0f64..10.0,
    ) {
        let m = ResponseModel::new(base, sensitivity, 1.0);
        let p1 = m.response_probability(i1);
        let p2 = m.response_probability(i1 + di);
        prop_assert!(p2 >= p1 - 1e-12);
        prop_assert!((0.0..=1.0).contains(&p1));
        prop_assert!((0.0..=1.0).contains(&p2));
    }

    #[test]
    fn crowd_worlds_are_deterministic(
        size in 1usize..150,
        seed in any::<u64>(),
        requests in 1usize..50,
    ) {
        let run = || {
            let region = Rect::with_size(5.0, 5.0);
            let mut c = Crowd::new(CrowdConfig {
                region,
                population: PopulationConfig {
                    size,
                    placement: Placement::Uniform,
                    mobility: Mobility::RandomWalk { sigma: 0.2 },
                    human_fraction: 0.5,
                },
                seed,
            });
            c.register_field(AttributeId(0), Box::new(ConstantField(AttrValue::Bool(true))));
            c.dispatch_requests(AttributeId(0), &region, requests, 0.5);
            c.step(1.0);
            c.step(1.0);
            let responses = c.drain_responses();
            (responses.len(), responses.first().map(|r| (r.sensor, r.measurement.point.t)))
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn responses_never_outnumber_requests_without_replacement(
        size in 50usize..200,
        requests in 1usize..50,
        seed in any::<u64>(),
    ) {
        let region = Rect::with_size(5.0, 5.0);
        let mut c = Crowd::new(CrowdConfig {
            region,
            population: PopulationConfig {
                size,
                placement: Placement::Uniform,
                mobility: Mobility::Stationary,
                human_fraction: 0.0,
            },
            seed,
        });
        c.register_field(AttributeId(0), Box::new(ConstantField(AttrValue::Bool(true))));
        let sent = c.dispatch_requests(AttributeId(0), &region, requests, 0.0);
        prop_assert!(sent <= requests);
        for _ in 0..20 {
            c.step(1.0);
        }
        let responses = c.drain_responses();
        prop_assert!(responses.len() <= sent, "{} responses from {sent} requests", responses.len());
    }

    #[test]
    fn transport_round_trips_arbitrary_responses(
        sensor in any::<u64>(),
        attr in any::<u16>(),
        t in -1e6f64..1e6,
        x in -1e6f64..1e6,
        y in -1e6f64..1e6,
        issued in -1e6f64..1e6,
        float_value in prop::option::of(-1e9f64..1e9),
    ) {
        let value = match float_value {
            Some(v) => AttrValue::Float(v),
            None => AttrValue::Bool(sensor % 2 == 0),
        };
        let resp = SensorResponse {
            sensor: SensorId(sensor),
            measurement: Measurement {
                attr: AttributeId(attr),
                point: craqr_geom::SpaceTimePoint::new(t, x, y),
                value,
            },
            issued_at: issued,
        };
        let decoded = decode_response(encode_response(&resp)).expect("round trip");
        prop_assert_eq!(decoded, resp);
    }

    #[test]
    fn placement_always_lands_inside_region(
        w in 1.0f64..20.0,
        h in 1.0f64..20.0,
        cx in -30.0f64..30.0,
        cy in -30.0f64..30.0,
        sigma in 0.05f64..5.0,
        floor in 0.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let region = Rect::with_size(w, h);
        let placement = Placement::Hotspots { spots: vec![(cx, cy, 1.0, sigma)], floor };
        let mut rng = seeded_rng(seed);
        for _ in 0..100 {
            let (x, y) = placement.sample(&region, &mut rng);
            prop_assert!(region.contains(x, y), "({x}, {y}) outside {region}");
        }
    }
}
