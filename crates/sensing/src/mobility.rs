//! Sensor mobility models.
//!
//! "In crowdsensing, sensors are mobile and not stationary … the number of
//! mobile sensors in a particular region and time is unpredictable and is
//! spatio-temporally skewed" (Section I). The four classic models below
//! cover the spectrum used in the mobile-sensing literature, from fixed
//! stations to smooth vehicular motion. All models keep sensors inside the
//! region by reflecting at the boundary.

use craqr_geom::Rect;
use craqr_stats::dist::Normal;
use rand::distributions::Distribution;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-sensor mobility state machine. Units: km, minutes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Mobility {
    /// A fixed installation (e.g. a wall-mounted station participating in
    /// the crowd); the degenerate case matching classic WSN assumptions.
    Stationary,
    /// Isotropic Gaussian random walk: each step perturbs the position by
    /// `N(0, (sigma·√dt)²)` per axis.
    RandomWalk {
        /// Per-√minute standard deviation of the step (km).
        sigma: f64,
    },
    /// Random waypoint: pick a uniform target in the region, travel towards
    /// it at `speed`, pause `pause` minutes, repeat. The classic
    /// human-with-a-smartphone model.
    RandomWaypoint {
        /// Travel speed (km/min).
        speed: f64,
        /// Pause duration at each waypoint (minutes).
        pause: f64,
        /// Current target, if travelling.
        #[serde(skip)]
        target: Option<(f64, f64)>,
        /// Remaining pause time (minutes).
        #[serde(skip)]
        pause_left: f64,
    },
    /// Gauss–Markov: velocity is an AR(1) process with memory `alpha`,
    /// producing smooth vehicle-like trajectories.
    GaussMarkov {
        /// Memory parameter in `[0, 1)` (0 = white noise, →1 = straight line).
        alpha: f64,
        /// Mean speed (km/min).
        mean_speed: f64,
        /// Velocity noise standard deviation (km/min).
        sigma: f64,
        /// Current velocity (km/min).
        #[serde(skip)]
        velocity: (f64, f64),
    },
}

impl Mobility {
    /// Creates a random-waypoint model.
    ///
    /// # Panics
    /// Panics when `speed <= 0` or `pause < 0`.
    #[track_caller]
    pub fn random_waypoint(speed: f64, pause: f64) -> Self {
        assert!(speed > 0.0, "speed must be > 0");
        assert!(pause >= 0.0, "pause must be >= 0");
        Mobility::RandomWaypoint { speed, pause, target: None, pause_left: 0.0 }
    }

    /// Creates a Gauss–Markov model.
    ///
    /// # Panics
    /// Panics when `alpha ∉ [0, 1)` or speeds are negative.
    #[track_caller]
    pub fn gauss_markov(alpha: f64, mean_speed: f64, sigma: f64) -> Self {
        assert!((0.0..1.0).contains(&alpha), "alpha must be in [0,1)");
        assert!(mean_speed >= 0.0 && sigma >= 0.0, "speeds must be >= 0");
        Mobility::GaussMarkov { alpha, mean_speed, sigma, velocity: (0.0, 0.0) }
    }

    /// Advances a position by `dt` minutes, returning the new position
    /// (reflected into `region`).
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        pos: (f64, f64),
        dt: f64,
        region: &Rect,
        rng: &mut R,
    ) -> (f64, f64) {
        assert!(dt > 0.0, "dt must be > 0");
        let raw = match self {
            Mobility::Stationary => pos,
            Mobility::RandomWalk { sigma } => {
                let step = Normal::new(0.0, *sigma * dt.sqrt());
                (pos.0 + step.sample(rng), pos.1 + step.sample(rng))
            }
            Mobility::RandomWaypoint { speed, pause, target, pause_left } => {
                let mut remaining = dt;
                let mut p = pos;
                while remaining > 1e-12 {
                    if *pause_left > 0.0 {
                        let wait = pause_left.min(remaining);
                        *pause_left -= wait;
                        remaining -= wait;
                        continue;
                    }
                    let tgt = *target.get_or_insert_with(|| {
                        (rng.gen_range(region.x0..region.x1), rng.gen_range(region.y0..region.y1))
                    });
                    let dx = tgt.0 - p.0;
                    let dy = tgt.1 - p.1;
                    let dist = (dx * dx + dy * dy).sqrt();
                    let reach = *speed * remaining;
                    if reach >= dist {
                        // Arrive, start pausing, pick a new target next leg.
                        p = tgt;
                        remaining -= if *speed > 0.0 { dist / *speed } else { remaining };
                        *target = None;
                        *pause_left = *pause;
                    } else {
                        p = (p.0 + dx / dist * reach, p.1 + dy / dist * reach);
                        remaining = 0.0;
                    }
                }
                p
            }
            Mobility::GaussMarkov { alpha, mean_speed, sigma, velocity } => {
                let noise = Normal::new(0.0, *sigma * (1.0 - *alpha * *alpha).sqrt());
                // Mean velocity direction drifts isotropically around the
                // current heading; classic formulation uses a mean speed on
                // each axis of mean_speed/√2.
                let mean_axis = *mean_speed / std::f64::consts::SQRT_2;
                let sign = |v: f64| if v >= 0.0 { 1.0 } else { -1.0 };
                velocity.0 = *alpha * velocity.0
                    + (1.0 - *alpha) * mean_axis * sign(velocity.0)
                    + noise.sample(rng);
                velocity.1 = *alpha * velocity.1
                    + (1.0 - *alpha) * mean_axis * sign(velocity.1)
                    + noise.sample(rng);
                (pos.0 + velocity.0 * dt, pos.1 + velocity.1 * dt)
            }
        };
        reflect(raw, region)
    }
}

/// Reflects a position into the region (billiard reflection, repeated until
/// inside; a single reflection suffices for realistic steps but large
/// Gauss–Markov excursions can need more).
fn reflect(mut p: (f64, f64), region: &Rect) -> (f64, f64) {
    let w = region.width();
    let h = region.height();
    for _ in 0..64 {
        let mut moved = false;
        if p.0 < region.x0 {
            p.0 = region.x0 + (region.x0 - p.0).min(w);
            moved = true;
        } else if p.0 >= region.x1 {
            p.0 = region.x1 - (p.0 - region.x1).min(w) - f64::EPSILON * region.x1.abs().max(1.0);
            moved = true;
        }
        if p.1 < region.y0 {
            p.1 = region.y0 + (region.y0 - p.1).min(h);
            moved = true;
        } else if p.1 >= region.y1 {
            p.1 = region.y1 - (p.1 - region.y1).min(h) - f64::EPSILON * region.y1.abs().max(1.0);
            moved = true;
        }
        if !moved {
            break;
        }
    }
    // Clamp as a last resort (pathological steps many times the region size).
    p.0 = p.0.clamp(region.x0, region.x1 - f64::EPSILON * region.x1.abs().max(1.0));
    p.1 = p.1.clamp(region.y0, region.y1 - f64::EPSILON * region.y1.abs().max(1.0));
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use craqr_stats::seeded_rng;

    fn region() -> Rect {
        Rect::with_size(10.0, 10.0)
    }

    #[test]
    fn stationary_never_moves() {
        let mut m = Mobility::Stationary;
        let mut rng = seeded_rng(1);
        let p = m.step((3.0, 4.0), 5.0, &region(), &mut rng);
        assert_eq!(p, (3.0, 4.0));
    }

    #[test]
    fn random_walk_stays_in_region() {
        let mut m = Mobility::RandomWalk { sigma: 2.0 };
        let mut rng = seeded_rng(2);
        let mut p = (5.0, 5.0);
        for _ in 0..2_000 {
            p = m.step(p, 1.0, &region(), &mut rng);
            assert!(region().contains(p.0, p.1), "escaped to {p:?}");
        }
    }

    #[test]
    fn random_walk_actually_moves() {
        let mut m = Mobility::RandomWalk { sigma: 0.5 };
        let mut rng = seeded_rng(3);
        let p0 = (5.0, 5.0);
        let p1 = m.step(p0, 1.0, &region(), &mut rng);
        assert_ne!(p0, p1);
    }

    #[test]
    fn waypoint_reaches_target_and_pauses() {
        let mut m = Mobility::random_waypoint(1.0, 2.0);
        let mut rng = seeded_rng(4);
        let mut p = (5.0, 5.0);
        // Advance far enough to complete several legs.
        for _ in 0..200 {
            p = m.step(p, 1.0, &region(), &mut rng);
            assert!(region().contains(p.0, p.1));
        }
        // The model must have consumed at least one waypoint by now.
        if let Mobility::RandomWaypoint { target, .. } = &m {
            // Either travelling to a target or pausing — both are valid; the
            // real assertion is that stepping never panicked and stayed inside.
            let _ = target;
        } else {
            unreachable!()
        }
    }

    #[test]
    fn waypoint_speed_bounds_displacement() {
        let speed = 0.5;
        let mut m = Mobility::random_waypoint(speed, 0.0);
        let mut rng = seeded_rng(5);
        let mut p = (5.0, 5.0);
        for _ in 0..500 {
            let q = m.step(p, 1.0, &region(), &mut rng);
            let d = ((q.0 - p.0).powi(2) + (q.1 - p.1).powi(2)).sqrt();
            // One minute at speed 0.5 km/min moves at most 0.5 km… plus the
            // possibility of consecutive legs bending the path (distance can
            // only shrink relative to straight-line travel).
            assert!(d <= speed + 1e-9, "moved {d}");
            p = q;
        }
    }

    #[test]
    fn gauss_markov_is_smooth_and_bounded() {
        let mut m = Mobility::gauss_markov(0.85, 0.6, 0.1);
        let mut rng = seeded_rng(6);
        let mut p = (5.0, 5.0);
        let mut total = 0.0;
        for _ in 0..1_000 {
            let q = m.step(p, 1.0, &region(), &mut rng);
            assert!(region().contains(q.0, q.1));
            total += ((q.0 - p.0).powi(2) + (q.1 - p.1).powi(2)).sqrt();
            p = q;
        }
        assert!(total > 10.0, "vehicle should cover ground, moved {total}");
    }

    #[test]
    fn reflect_handles_far_excursions() {
        let r = region();
        let p = reflect((25.0, -13.0), &r);
        assert!(r.contains(p.0, p.1), "{p:?}");
        let p = reflect((-100.0, 100.0), &r);
        assert!(r.contains(p.0, p.1), "{p:?}");
    }

    #[test]
    #[should_panic(expected = "speed must be > 0")]
    fn waypoint_rejects_zero_speed() {
        let _ = Mobility::random_waypoint(0.0, 1.0);
    }
}
