//! Shared identifier and message types.

use craqr_geom::SpaceTimePoint;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an attribute of interest `A⟨j⟩` (Section II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttributeId(pub u16);

impl fmt::Display for AttributeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A<{}>", self.0)
    }
}

/// Identifier of a mobile sensor `sᵢ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SensorId(pub u64);

impl fmt::Display for SensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The value `a⟨j⟩ᵢ` of an attribute observation.
///
/// The paper's two running examples fix the two variants: `rain` is a
/// human-sensed boolean, `temp` a sensor-sensed real.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// A human-sensed boolean observation (e.g. "is it raining?").
    Bool(bool),
    /// A sensor-sensed real observation (e.g. ambient temperature in °C).
    Float(f64),
}

impl AttrValue {
    /// The boolean payload, if this is a boolean observation.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            AttrValue::Float(_) => None,
        }
    }

    /// The float payload, if this is a real-valued observation.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            AttrValue::Float(v) => Some(*v),
            AttrValue::Bool(_) => None,
        }
    }
}

/// One observation made by a sensor: where/when plus the sensed value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// The observed attribute.
    pub attr: AttributeId,
    /// Space-time coordinates of the observation.
    pub point: SpaceTimePoint,
    /// Observed value.
    pub value: AttrValue,
}

/// An acquisition request the server sends to one sensor
/// (request/response handler, Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcquisitionRequest {
    /// Attribute to observe.
    pub attr: AttributeId,
    /// Server time at which the request was issued (minutes).
    pub issued_at: f64,
    /// Incentive offered for answering (arbitrary units; 0 = none). The
    /// Section VI extension raises this instead of the budget when the
    /// budget is capped.
    pub incentive: f64,
}

/// A sensor's (possibly much later) answer to a request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorResponse {
    /// Which sensor answered.
    pub sensor: SensorId,
    /// The observation; `point.t` is the time the sensor *measured* (it may
    /// reach the server later still).
    pub measurement: Measurement,
    /// The request that elicited the response.
    pub issued_at: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_value_accessors() {
        assert_eq!(AttrValue::Bool(true).as_bool(), Some(true));
        assert_eq!(AttrValue::Bool(true).as_float(), None);
        assert_eq!(AttrValue::Float(2.5).as_float(), Some(2.5));
        assert_eq!(AttrValue::Float(2.5).as_bool(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(AttributeId(1).to_string(), "A<1>");
        assert_eq!(SensorId(42).to_string(), "s42");
    }
}
