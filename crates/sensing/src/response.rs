//! Participation behaviour of mobile sensors.
//!
//! "His/her reply could be unpredictably delayed for several reasons: he/she
//! is not interested in responding at this moment, he/she thinks that the
//! incentive offered for responding is not enough …" (Section III). The
//! response model captures exactly those two axes: *whether* a sensor
//! answers (probability increasing in the incentive) and *when* (an
//! exponential latency).

use craqr_stats::dist::Exponential;
use rand::distributions::Distribution;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Stochastic response behaviour of one sensor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponseModel {
    /// Probability of answering an un-incentivized request, in `[0, 1]`.
    pub base_probability: f64,
    /// Incentive sensitivity `k ≥ 0`: the answer probability is
    /// `p(i) = base + (1 − base)·(1 − e^{−k·i})`, saturating at 1.
    pub incentive_sensitivity: f64,
    /// Mean response latency (minutes) for an answered request.
    pub mean_latency: f64,
}

impl ResponseModel {
    /// A human participant: moderately likely to answer, slow, noticeably
    /// incentive-sensitive.
    pub fn human() -> Self {
        Self { base_probability: 0.3, incentive_sensitivity: 1.0, mean_latency: 2.0 }
    }

    /// An automated on-board sensor: answers almost always, quickly, and
    /// ignores incentives.
    pub fn automatic() -> Self {
        Self { base_probability: 0.95, incentive_sensitivity: 0.0, mean_latency: 0.05 }
    }

    /// Creates a custom model.
    ///
    /// # Panics
    /// Panics when the probability is outside `[0, 1]` or other parameters
    /// are negative.
    #[track_caller]
    pub fn new(base_probability: f64, incentive_sensitivity: f64, mean_latency: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&base_probability),
            "base probability must be in [0,1], got {base_probability}"
        );
        assert!(incentive_sensitivity >= 0.0, "sensitivity must be >= 0");
        assert!(mean_latency >= 0.0, "latency must be >= 0");
        Self { base_probability, incentive_sensitivity, mean_latency }
    }

    /// The probability of answering a request with the given incentive.
    pub fn response_probability(&self, incentive: f64) -> f64 {
        let incentive = incentive.max(0.0);
        let boost = 1.0 - (-self.incentive_sensitivity * incentive).exp();
        (self.base_probability + (1.0 - self.base_probability) * boost).clamp(0.0, 1.0)
    }

    /// Decides whether this request gets answered, and if so after how many
    /// minutes. `None` means the request is silently ignored.
    pub fn draw_response<R: Rng + ?Sized>(&self, incentive: f64, rng: &mut R) -> Option<f64> {
        if rng.gen::<f64>() >= self.response_probability(incentive) {
            return None;
        }
        if self.mean_latency == 0.0 {
            return Some(0.0);
        }
        Some(Exponential::new(1.0 / self.mean_latency).sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craqr_stats::seeded_rng;

    #[test]
    fn probability_increases_with_incentive() {
        let m = ResponseModel::human();
        let p0 = m.response_probability(0.0);
        let p1 = m.response_probability(1.0);
        let p5 = m.response_probability(5.0);
        assert!((p0 - 0.3).abs() < 1e-12);
        assert!(p1 > p0);
        assert!(p5 > p1);
        assert!(p5 <= 1.0);
    }

    #[test]
    fn insensitive_model_ignores_incentive() {
        let m = ResponseModel::automatic();
        assert_eq!(m.response_probability(0.0), m.response_probability(100.0));
    }

    #[test]
    fn negative_incentive_treated_as_zero() {
        let m = ResponseModel::human();
        assert_eq!(m.response_probability(-3.0), m.response_probability(0.0));
    }

    #[test]
    fn empirical_response_rate_matches_probability() {
        let m = ResponseModel::new(0.4, 0.0, 1.0);
        let mut rng = seeded_rng(1);
        let n = 100_000;
        let answered = (0..n).filter(|_| m.draw_response(0.0, &mut rng).is_some()).count();
        let frac = answered as f64 / n as f64;
        assert!((frac - 0.4).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn latency_mean_matches_model() {
        let m = ResponseModel::new(1.0, 0.0, 3.0);
        let mut rng = seeded_rng(2);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| m.draw_response(0.0, &mut rng).unwrap()).sum();
        let mean = total / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean latency {mean}");
    }

    #[test]
    fn zero_latency_model_is_instant() {
        let m = ResponseModel::new(1.0, 0.0, 0.0);
        let mut rng = seeded_rng(3);
        assert_eq!(m.draw_response(0.0, &mut rng), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_rejected() {
        let _ = ResponseModel::new(1.5, 0.0, 1.0);
    }
}
