//! Ground-truth phenomena the crowd observes.
//!
//! The paper's two running examples are `rain` (human-sensed boolean) and
//! `temp` (sensor-sensed real). A [`Field`] gives every space-time point a
//! true value; sensors sample it — possibly with error (Section VI) — when
//! they answer an acquisition request. Having ground truth lets the
//! experiment harness score the *content* of fabricated streams, not just
//! their rates.

use crate::types::AttrValue;
use craqr_geom::SpaceTimePoint;
use serde::{Deserialize, Serialize};

/// A spatio-temporal ground-truth field.
pub trait Field: Send + Sync {
    /// The true value at a space-time point.
    fn value_at(&self, p: &SpaceTimePoint) -> AttrValue;
}

/// A rain band sweeping across the region at constant velocity — the ground
/// truth behind the human-sensed `rain` attribute.
///
/// At time `t` it rains where `x ∈ [front(t) − width, front(t))` with
/// `front(t) = x_start + speed·t`. A negative speed sweeps leftwards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RainFront {
    /// Front position at `t = 0` (km).
    pub x_start: f64,
    /// Front speed (km/min; may be negative).
    pub speed: f64,
    /// Band width (km).
    pub width: f64,
}

impl RainFront {
    /// Creates a rain front.
    ///
    /// # Panics
    /// Panics when `width <= 0`.
    #[track_caller]
    pub fn new(x_start: f64, speed: f64, width: f64) -> Self {
        assert!(width > 0.0, "band width must be > 0");
        Self { x_start, speed, width }
    }

    /// `true` when it rains at `p`.
    pub fn is_raining(&self, p: &SpaceTimePoint) -> bool {
        let front = self.x_start + self.speed * p.t;
        p.x >= front - self.width && p.x < front
    }
}

impl Field for RainFront {
    fn value_at(&self, p: &SpaceTimePoint) -> AttrValue {
        AttrValue::Bool(self.is_raining(p))
    }
}

/// A smooth temperature surface: base level, urban-heat-island Gaussian
/// bumps, a linear north-south gradient, and a diurnal sinusoid — the
/// ground truth behind the sensor-sensed `temp` attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemperatureField {
    /// Baseline temperature (°C).
    pub base: f64,
    /// North–south gradient (°C per km of y).
    pub y_gradient: f64,
    /// Heat islands `(cx, cy, amplitude °C, sigma km)`.
    pub islands: Vec<(f64, f64, f64, f64)>,
    /// Diurnal amplitude (°C).
    pub diurnal_amplitude: f64,
    /// Diurnal period (minutes; 1440 = a day).
    pub diurnal_period: f64,
}

impl TemperatureField {
    /// A mild default field: 20 °C base, one heat island, 24 h cycle.
    pub fn city_default() -> Self {
        Self {
            base: 20.0,
            y_gradient: -0.1,
            islands: vec![(5.0, 5.0, 4.0, 2.0)],
            diurnal_amplitude: 5.0,
            diurnal_period: 1440.0,
        }
    }

    /// The true temperature at `p` (°C).
    pub fn temperature_at(&self, p: &SpaceTimePoint) -> f64 {
        let mut v = self.base + self.y_gradient * p.y;
        for &(cx, cy, amp, sigma) in &self.islands {
            let d2 = (p.x - cx).powi(2) + (p.y - cy).powi(2);
            v += amp * (-d2 / (2.0 * sigma * sigma)).exp();
        }
        v + self.diurnal_amplitude * (2.0 * std::f64::consts::PI * p.t / self.diurnal_period).sin()
    }
}

impl Field for TemperatureField {
    fn value_at(&self, p: &SpaceTimePoint) -> AttrValue {
        AttrValue::Float(self.temperature_at(p))
    }
}

/// A constant field, useful in tests where content does not matter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantField(pub AttrValue);

impl Field for ConstantField {
    fn value_at(&self, _p: &SpaceTimePoint) -> AttrValue {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rain_front_moves_with_time() {
        let f = RainFront::new(0.0, 1.0, 2.0);
        // At t=5 the front is at x=5; raining for x in [3, 5).
        assert!(f.is_raining(&SpaceTimePoint::new(5.0, 4.0, 0.0)));
        assert!(f.is_raining(&SpaceTimePoint::new(5.0, 3.0, 0.0)));
        assert!(!f.is_raining(&SpaceTimePoint::new(5.0, 5.0, 0.0)));
        assert!(!f.is_raining(&SpaceTimePoint::new(5.0, 2.9, 0.0)));
        // Later, the band has moved on.
        assert!(!f.is_raining(&SpaceTimePoint::new(20.0, 4.0, 0.0)));
    }

    #[test]
    fn rain_front_field_value() {
        let f = RainFront::new(5.0, 0.0, 10.0);
        assert_eq!(f.value_at(&SpaceTimePoint::new(0.0, 1.0, 0.0)), AttrValue::Bool(true));
        assert_eq!(f.value_at(&SpaceTimePoint::new(0.0, 7.0, 0.0)), AttrValue::Bool(false));
    }

    #[test]
    fn temperature_has_heat_island() {
        let f = TemperatureField::city_default();
        let center = f.temperature_at(&SpaceTimePoint::new(0.0, 5.0, 5.0));
        let outskirts = f.temperature_at(&SpaceTimePoint::new(0.0, 0.0, 0.0));
        assert!(center > outskirts + 2.0, "center {center} vs outskirts {outskirts}");
    }

    #[test]
    fn temperature_diurnal_cycle() {
        let f = TemperatureField::city_default();
        let p_morning = SpaceTimePoint::new(360.0, 0.0, 0.0); // quarter period
        let p_evening = SpaceTimePoint::new(1080.0, 0.0, 0.0); // three quarters
        let diff = f.temperature_at(&p_morning) - f.temperature_at(&p_evening);
        assert!((diff - 2.0 * f.diurnal_amplitude).abs() < 1e-9);
    }

    #[test]
    fn temperature_y_gradient() {
        let f = TemperatureField {
            islands: vec![],
            diurnal_amplitude: 0.0,
            ..TemperatureField::city_default()
        };
        let north = f.temperature_at(&SpaceTimePoint::new(0.0, 0.0, 10.0));
        let south = f.temperature_at(&SpaceTimePoint::new(0.0, 0.0, 0.0));
        assert!((south - north - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_field_is_constant() {
        let f = ConstantField(AttrValue::Float(1.5));
        assert_eq!(f.value_at(&SpaceTimePoint::new(9.0, 9.0, 9.0)), AttrValue::Float(1.5));
    }
}
