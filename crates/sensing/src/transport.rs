//! Framed wire encoding and a lossy in-process channel.
//!
//! The paper assumes sensors "share all the information required for
//! processing queries with a central server" over some network. The wire
//! format here is a compact binary framing of [`AcquisitionRequest`] and
//! [`SensorResponse`]; [`LossyChannel`] adds configurable message loss so
//! experiments can inject transport failures (Section VI error handling).

use crate::types::{
    AcquisitionRequest, AttrValue, AttributeId, Measurement, SensorId, SensorResponse,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use craqr_geom::SpaceTimePoint;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

/// Frame type tags.
const KIND_REQUEST: u8 = 1;
const KIND_RESPONSE: u8 = 2;
const VALUE_BOOL: u8 = 1;
const VALUE_FLOAT: u8 = 2;

/// Decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The frame ended before the expected payload.
    Truncated,
    /// Unknown frame or value tag.
    BadTag(u8),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Truncated => write!(f, "truncated frame"),
            TransportError::BadTag(t) => write!(f, "unknown tag {t}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Encodes a request into a frame.
pub fn encode_request(req: &AcquisitionRequest) -> Bytes {
    let mut b = BytesMut::with_capacity(1 + 2 + 8 + 8);
    b.put_u8(KIND_REQUEST);
    b.put_u16(req.attr.0);
    b.put_f64(req.issued_at);
    b.put_f64(req.incentive);
    b.freeze()
}

/// Decodes a request frame.
pub fn decode_request(mut frame: Bytes) -> Result<AcquisitionRequest, TransportError> {
    if frame.remaining() < 1 {
        return Err(TransportError::Truncated);
    }
    let kind = frame.get_u8();
    if kind != KIND_REQUEST {
        return Err(TransportError::BadTag(kind));
    }
    if frame.remaining() < 2 + 8 + 8 {
        return Err(TransportError::Truncated);
    }
    Ok(AcquisitionRequest {
        attr: AttributeId(frame.get_u16()),
        issued_at: frame.get_f64(),
        incentive: frame.get_f64(),
    })
}

/// Encodes a response into a frame.
pub fn encode_response(resp: &SensorResponse) -> Bytes {
    let mut b = BytesMut::with_capacity(1 + 8 + 2 + 24 + 1 + 8 + 8);
    b.put_u8(KIND_RESPONSE);
    b.put_u64(resp.sensor.0);
    b.put_u16(resp.measurement.attr.0);
    b.put_f64(resp.measurement.point.t);
    b.put_f64(resp.measurement.point.x);
    b.put_f64(resp.measurement.point.y);
    match resp.measurement.value {
        AttrValue::Bool(v) => {
            b.put_u8(VALUE_BOOL);
            b.put_u8(v as u8);
        }
        AttrValue::Float(v) => {
            b.put_u8(VALUE_FLOAT);
            b.put_f64(v);
        }
    }
    b.put_f64(resp.issued_at);
    b.freeze()
}

/// Decodes a response frame.
pub fn decode_response(mut frame: Bytes) -> Result<SensorResponse, TransportError> {
    if frame.remaining() < 1 {
        return Err(TransportError::Truncated);
    }
    let kind = frame.get_u8();
    if kind != KIND_RESPONSE {
        return Err(TransportError::BadTag(kind));
    }
    if frame.remaining() < 8 + 2 + 24 + 1 {
        return Err(TransportError::Truncated);
    }
    let sensor = SensorId(frame.get_u64());
    let attr = AttributeId(frame.get_u16());
    let t = frame.get_f64();
    let x = frame.get_f64();
    let y = frame.get_f64();
    let value = match frame.get_u8() {
        VALUE_BOOL => {
            if frame.remaining() < 1 {
                return Err(TransportError::Truncated);
            }
            AttrValue::Bool(frame.get_u8() != 0)
        }
        VALUE_FLOAT => {
            if frame.remaining() < 8 {
                return Err(TransportError::Truncated);
            }
            AttrValue::Float(frame.get_f64())
        }
        tag => return Err(TransportError::BadTag(tag)),
    };
    if frame.remaining() < 8 {
        return Err(TransportError::Truncated);
    }
    let issued_at = frame.get_f64();
    Ok(SensorResponse {
        sensor,
        measurement: Measurement { attr, point: SpaceTimePoint::new(t, x, y), value },
        issued_at,
    })
}

/// An in-process frame channel that drops each message with probability
/// `loss`. Deterministic under a seeded RNG.
pub struct LossyChannel {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    loss: f64,
    rng: StdRng,
    sent: u64,
    dropped: u64,
}

impl LossyChannel {
    /// Creates a channel with the given loss probability.
    ///
    /// # Panics
    /// Panics when `loss ∉ [0, 1]`.
    #[track_caller]
    pub fn new(loss: f64, rng: StdRng) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be in [0,1], got {loss}");
        let (tx, rx) = unbounded();
        Self { tx, rx, loss, rng, sent: 0, dropped: 0 }
    }

    /// Sends a frame (possibly dropping it).
    pub fn send(&mut self, frame: Bytes) {
        self.sent += 1;
        if self.rng.gen::<f64>() < self.loss {
            self.dropped += 1;
            return;
        }
        // Unbounded in-process channel: send never fails while rx is alive.
        self.tx.send(frame).expect("receiver alive");
    }

    /// Drains all frames that survived.
    pub fn recv_all(&mut self) -> Vec<Bytes> {
        let mut out = Vec::new();
        loop {
            match self.rx.try_recv() {
                Ok(frame) => out.push(frame),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break,
            }
        }
        out
    }

    /// `(sent, dropped)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.sent, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craqr_stats::seeded_rng;

    fn request() -> AcquisitionRequest {
        AcquisitionRequest { attr: AttributeId(3), issued_at: 12.5, incentive: 0.75 }
    }

    fn response(value: AttrValue) -> SensorResponse {
        SensorResponse {
            sensor: SensorId(99),
            measurement: Measurement {
                attr: AttributeId(1),
                point: SpaceTimePoint::new(4.0, 5.5, 6.25),
                value,
            },
            issued_at: 3.5,
        }
    }

    #[test]
    fn request_round_trip() {
        let r = request();
        assert_eq!(decode_request(encode_request(&r)).unwrap(), r);
    }

    #[test]
    fn response_round_trip_bool_and_float() {
        for v in [AttrValue::Bool(true), AttrValue::Bool(false), AttrValue::Float(-7.125)] {
            let r = response(v);
            assert_eq!(decode_response(encode_response(&r)).unwrap(), r);
        }
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let full = encode_response(&response(AttrValue::Float(1.0)));
        for cut in [0, 1, 5, 10, full.len() - 1] {
            let err = decode_response(full.slice(0..cut)).unwrap_err();
            assert_eq!(err, TransportError::Truncated, "cut at {cut}");
        }
        let full = encode_request(&request());
        let err = decode_request(full.slice(0..3)).unwrap_err();
        assert_eq!(err, TransportError::Truncated);
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let req = encode_request(&request());
        assert!(matches!(decode_response(req), Err(TransportError::BadTag(KIND_REQUEST))));
        let resp = encode_response(&response(AttrValue::Bool(true)));
        assert!(matches!(decode_request(resp), Err(TransportError::BadTag(KIND_RESPONSE))));
    }

    #[test]
    fn corrupt_value_tag_is_rejected() {
        let mut raw = BytesMut::from(&encode_response(&response(AttrValue::Bool(true)))[..]);
        // The value tag sits after kind(1)+sensor(8)+attr(2)+coords(24).
        raw[35] = 77;
        assert!(matches!(decode_response(raw.freeze()), Err(TransportError::BadTag(77))));
    }

    #[test]
    fn lossless_channel_delivers_everything() {
        let mut ch = LossyChannel::new(0.0, seeded_rng(1));
        for i in 0..100u16 {
            ch.send(encode_request(&AcquisitionRequest {
                attr: AttributeId(i),
                issued_at: 0.0,
                incentive: 0.0,
            }));
        }
        assert_eq!(ch.recv_all().len(), 100);
        assert_eq!(ch.stats(), (100, 0));
    }

    #[test]
    fn lossy_channel_drops_expected_fraction() {
        let mut ch = LossyChannel::new(0.3, seeded_rng(2));
        for _ in 0..10_000 {
            ch.send(encode_request(&request()));
        }
        let delivered = ch.recv_all().len();
        let frac = delivered as f64 / 10_000.0;
        assert!((frac - 0.7).abs() < 0.02, "delivered fraction {frac}");
        let (sent, dropped) = ch.stats();
        assert_eq!(sent, 10_000);
        assert_eq!(dropped as usize + delivered, 10_000);
    }

    #[test]
    fn full_loss_channel_delivers_nothing() {
        let mut ch = LossyChannel::new(1.0, seeded_rng(3));
        ch.send(encode_request(&request()));
        assert!(ch.recv_all().is_empty());
    }
}
