//! The simulated world: sensors, phenomena, and in-flight responses.

use crate::fields::Field;
use crate::population::PopulationConfig;
use crate::sensor::MobileSensor;
use crate::types::{AttributeId, SensorId, SensorResponse};
use craqr_geom::{Grid, Rect};
use craqr_stats::sub_rng;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Configuration of a [`Crowd`].
#[derive(Debug, Clone)]
pub struct CrowdConfig {
    /// The geographical region `R`.
    pub region: Rect,
    /// Sensor population.
    pub population: PopulationConfig,
    /// Master seed; mobility, participation, and placement derive
    /// independent sub-streams from it.
    pub seed: u64,
}

/// Crowd-side delivery faults, applied independently to every maturing
/// response: message **drop** (the answer never arrives), **delay** (the
/// answer is held back a fixed number of minutes — the sensor re-measures
/// at the *new* delivery time, so a delayed answer carries a genuinely
/// staler position), and **duplication** (the transport delivers the same
/// answer twice). All probabilities default to zero; a default-faults
/// crowd draws nothing from the fault RNG stream and behaves
/// byte-identically to a fault-free one.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CrowdFaults {
    /// Probability that a maturing response is silently dropped.
    pub drop_probability: f64,
    /// Probability that a maturing response is deferred by
    /// [`delay_minutes`](Self::delay_minutes).
    pub delay_probability: f64,
    /// Deferral applied to delayed responses, in minutes. Must be `> 0`
    /// whenever `delay_probability > 0` (a zero delay would re-mature the
    /// response in the same instant, forever).
    pub delay_minutes: f64,
    /// Probability that a delivered response is delivered twice.
    pub duplicate_probability: f64,
}

impl CrowdFaults {
    /// True when any fault has a non-zero probability.
    pub fn is_active(&self) -> bool {
        self.drop_probability > 0.0
            || self.delay_probability > 0.0
            || self.duplicate_probability > 0.0
    }
}

/// An in-flight (accepted but not yet delivered) response; the due time
/// lives in the heap key.
#[derive(Debug, Clone, Copy)]
struct Pending {
    sensor: SensorId,
    attr: AttributeId,
    issued_at: f64,
}

/// Heap ordering by due time (earliest first via `Reverse`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct ByDue(f64);

impl Eq for ByDue {}

impl PartialOrd for ByDue {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ByDue {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The simulated mobile crowd.
///
/// Time is explicit and advances only through [`Crowd::step`]. The
/// request/response contract mirrors Section IV-A exactly:
///
/// 1. The server calls [`Crowd::dispatch_requests`] for an attribute, a
///    target rectangle (a grid cell), a request count (the budget share for
///    this batch) and an incentive. Requests go to *randomly selected*
///    sensors currently inside the rectangle — sampled without replacement
///    when enough sensors are available, with replacement otherwise (the
///    paper's rule).
/// 2. Each targeted sensor independently decides *whether* and *when* to
///    answer (its [`crate::response::ResponseModel`]).
/// 3. As simulation time passes the due answers materialize: the sensor
///    measures the registered ground-truth field at its position *at answer
///    time* — so a slow human reports a location the query may no longer
///    care about, reproducing the paper's motivating failure mode.
/// 4. [`Crowd::drain_responses`] hands the matured responses to the server.
pub struct Crowd {
    region: Rect,
    sensors: Vec<MobileSensor>,
    fields: HashMap<AttributeId, Box<dyn Field>>,
    pending: BinaryHeap<(Reverse<ByDue>, usize)>,
    pending_info: Vec<Pending>,
    ready: Vec<SensorResponse>,
    now: f64,
    mobility_rng: StdRng,
    participation_rng: StdRng,
    fault_rng: StdRng,
    faults: CrowdFaults,
    requests_sent: u64,
    responses_delivered: u64,
    responses_dropped: u64,
    responses_delayed: u64,
    responses_duplicated: u64,
}

impl Crowd {
    /// Builds the crowd from a config.
    pub fn new(config: CrowdConfig) -> Self {
        let mut placement_rng = sub_rng(config.seed, 0);
        let sensors = config.population.build(&config.region, &mut placement_rng);
        Self {
            region: config.region,
            sensors,
            fields: HashMap::new(),
            pending: BinaryHeap::new(),
            pending_info: Vec::new(),
            ready: Vec::new(),
            now: 0.0,
            mobility_rng: sub_rng(config.seed, 1),
            participation_rng: sub_rng(config.seed, 2),
            // Stream 3 is reserved for faults. The stream is always built
            // (construction draws nothing) but only touched when a fault
            // probability is non-zero, so fault-free runs are unchanged.
            fault_rng: sub_rng(config.seed, 3),
            faults: CrowdFaults::default(),
            requests_sent: 0,
            responses_delivered: 0,
            responses_dropped: 0,
            responses_delayed: 0,
            responses_duplicated: 0,
        }
    }

    /// Registers the ground-truth field behind an attribute. Requests for
    /// unregistered attributes panic — a configuration bug.
    pub fn register_field(&mut self, attr: AttributeId, field: Box<dyn Field>) {
        self.fields.insert(attr, field);
    }

    /// Current simulation time (minutes).
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The region `R`.
    #[inline]
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Number of sensors `m`.
    #[inline]
    pub fn sensor_count(&self) -> usize {
        self.sensors.len()
    }

    /// Read access to the sensors (for diagnostics and tests).
    pub fn sensors(&self) -> &[MobileSensor] {
        &self.sensors
    }

    /// Ids of sensors currently inside `rect`.
    pub fn sensors_in(&self, rect: &Rect) -> Vec<SensorId> {
        self.sensors
            .iter()
            .filter(|s| {
                let (x, y) = s.position();
                rect.contains(x, y)
            })
            .map(|s| s.id())
            .collect()
    }

    /// Replaces the crowd-side delivery faults. The faults apply to every
    /// response maturing from the next [`Crowd::step`] onward; already
    /// delivered responses are unaffected. Call with
    /// `CrowdFaults::default()` to clear.
    ///
    /// # Panics
    /// Panics when any probability is outside `[0, 1]`, or when
    /// `delay_probability > 0` with a non-positive or non-finite
    /// `delay_minutes`.
    #[track_caller]
    pub fn set_faults(&mut self, faults: CrowdFaults) {
        for (name, p) in [
            ("drop_probability", faults.drop_probability),
            ("delay_probability", faults.delay_probability),
            ("duplicate_probability", faults.duplicate_probability),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0,1], got {p}");
        }
        if faults.delay_probability > 0.0 {
            assert!(
                faults.delay_minutes.is_finite() && faults.delay_minutes > 0.0,
                "delay_minutes must be finite and > 0 when delays are active, got {}",
                faults.delay_minutes
            );
        }
        self.faults = faults;
    }

    /// The currently active crowd-side delivery faults.
    #[inline]
    pub fn faults(&self) -> CrowdFaults {
        self.faults
    }

    /// Advances the world by `dt` minutes: moves every sensor, then matures
    /// every pending response due by the new time, applying the active
    /// [`CrowdFaults`] to each maturing response.
    ///
    /// # Panics
    /// Panics when `dt <= 0`.
    pub fn step(&mut self, dt: f64) {
        assert!(dt > 0.0, "dt must be > 0");
        self.now += dt;
        for s in &mut self.sensors {
            s.advance(dt, &self.region, &mut self.mobility_rng);
        }
        // Mature due responses at post-move positions (answer-time position).
        // Fault draws are strictly conditional on a non-zero probability so
        // inactive fault kinds consume nothing from the fault stream.
        while let Some(&(Reverse(ByDue(due)), idx)) = self.pending.peek() {
            if due > self.now {
                break;
            }
            self.pending.pop();
            let info = self.pending_info[idx];
            if self.faults.drop_probability > 0.0
                && self.fault_rng.gen::<f64>() < self.faults.drop_probability
            {
                self.responses_dropped += 1;
                continue;
            }
            if self.faults.delay_probability > 0.0
                && self.fault_rng.gen::<f64>() < self.faults.delay_probability
            {
                // Re-queue at a strictly later due time; the sensor will
                // re-measure there, so the delay is observable staleness.
                // Terminates: each deferral moves `due` forward by a fixed
                // positive amount, so it eventually passes `now`.
                self.responses_delayed += 1;
                self.pending.push((Reverse(ByDue(due + self.faults.delay_minutes)), idx));
                continue;
            }
            let field = self
                .fields
                .get(&info.attr)
                .unwrap_or_else(|| panic!("no field registered for {}", info.attr));
            let sensor = &mut self.sensors[info.sensor.0 as usize];
            let measurement = sensor.observe(info.attr, field.as_ref(), due);
            let response =
                SensorResponse { sensor: info.sensor, measurement, issued_at: info.issued_at };
            self.ready.push(response);
            self.responses_delivered += 1;
            if self.faults.duplicate_probability > 0.0
                && self.fault_rng.gen::<f64>() < self.faults.duplicate_probability
            {
                self.ready.push(response);
                self.responses_delivered += 1;
                self.responses_duplicated += 1;
            }
        }
    }

    /// Sends `count` acquisition requests for `attr` to randomly selected
    /// sensors inside `target`, offering `incentive` each. Returns the
    /// number of requests actually sent (0 when the cell is empty).
    ///
    /// Sensors are sampled **without replacement** when at least `count`
    /// sensors are present, **with replacement** otherwise (Section IV-A).
    ///
    /// # Panics
    /// Panics when no field is registered for `attr`.
    pub fn dispatch_requests(
        &mut self,
        attr: AttributeId,
        target: &Rect,
        count: usize,
        incentive: f64,
    ) -> usize {
        assert!(self.fields.contains_key(&attr), "no field registered for {attr}");
        if count == 0 {
            return 0;
        }
        let candidates = self.sensors_in(target);
        if candidates.is_empty() {
            return 0;
        }
        let targets: Vec<SensorId> = if candidates.len() >= count {
            candidates.choose_multiple(&mut self.participation_rng, count).copied().collect()
        } else {
            (0..count)
                .map(|_| *candidates.choose(&mut self.participation_rng).expect("non-empty"))
                .collect()
        };
        let sent = targets.len();
        for sid in targets {
            self.requests_sent += 1;
            let sensor = &self.sensors[sid.0 as usize];
            if let Some(latency) = sensor.decide_response(incentive, &mut self.participation_rng) {
                let idx = self.pending_info.len();
                let due = self.now + latency;
                self.pending_info.push(Pending { sensor: sid, attr, issued_at: self.now });
                self.pending.push((Reverse(ByDue(due)), idx));
            }
        }
        sent
    }

    /// Drains all matured responses (ordered by delivery time).
    ///
    /// Ties (identical delivery times — possible with zero-latency
    /// response models) break on `(sensor, attribute, issue time)`, a
    /// total order over distinguishable responses, so the drained
    /// sequence is a pure function of the set of matured responses —
    /// which is what makes [`merge_sharded_responses`] an exact inverse
    /// of [`Crowd::drain_responses_sharded`].
    pub fn drain_responses(&mut self) -> Vec<SensorResponse> {
        self.drain_responses_reusing(Vec::new())
    }

    /// [`Crowd::drain_responses`] into a recycled buffer: `recycled` is
    /// cleared, swapped with the internal ready queue (which inherits the
    /// recycled allocation), and returned sorted. Steady-state epoch
    /// loops recycle their drained batch back through this to keep the
    /// drain allocation-free; the returned sequence is bit-identical to
    /// the plain drain.
    pub fn drain_responses_reusing(
        &mut self,
        mut recycled: Vec<SensorResponse>,
    ) -> Vec<SensorResponse> {
        recycled.clear();
        std::mem::swap(&mut recycled, &mut self.ready);
        recycled.sort_by(response_order);
        recycled
    }

    /// Drains all matured responses partitioned for a *distributed
    /// collector*: each response goes to the shard owning its grid cell
    /// (`(r · side + q) mod shards`, round-robin over row-major cell
    /// index), and every shard's list is delivery-time ordered.
    /// Responses landing outside the grid (sensors that wandered past
    /// `R`) go to shard 0 — the map phase drops them anyway.
    ///
    /// This is a **collection-side** partition over *all* grid cells; it
    /// is intentionally independent of the epoch executor's chain→shard
    /// assignment (which round-robins over the sorted list of
    /// *materialized* chains only, in `craqr-core`). Do not assume the
    /// two partitions align — the bridge between them is
    /// [`merge_sharded_responses`], which reconstructs the exact serial
    /// stream for the server's ingest path. (The in-process server loop
    /// uses plain [`Crowd::drain_responses`]; this variant exists for
    /// collectors that ship per-shard response streams separately.)
    ///
    /// # Panics
    /// Panics when `shards == 0`.
    #[track_caller]
    pub fn drain_responses_sharded(
        &mut self,
        grid: &Grid,
        shards: usize,
    ) -> Vec<Vec<SensorResponse>> {
        assert!(shards > 0, "need at least one shard");
        let all = self.drain_responses();
        let mut out: Vec<Vec<SensorResponse>> = (0..shards).map(|_| Vec::new()).collect();
        for r in all {
            let shard = grid
                .cell_of(r.measurement.point.x, r.measurement.point.y)
                .map_or(0, |c| ((c.r * grid.side() + c.q) as usize) % shards);
            out[shard].push(r);
        }
        out
    }

    /// Total requests sent so far.
    #[inline]
    pub fn requests_sent(&self) -> u64 {
        self.requests_sent
    }

    /// Total responses delivered so far (duplicates count individually).
    #[inline]
    pub fn responses_delivered(&self) -> u64 {
        self.responses_delivered
    }

    /// Responses swallowed by the drop fault.
    #[inline]
    pub fn responses_dropped(&self) -> u64 {
        self.responses_dropped
    }

    /// Deferral events applied by the delay fault (one response deferred
    /// twice counts twice).
    #[inline]
    pub fn responses_delayed(&self) -> u64 {
        self.responses_delayed
    }

    /// Extra copies injected by the duplication fault.
    #[inline]
    pub fn responses_duplicated(&self) -> u64 {
        self.responses_duplicated
    }

    /// Overall response rate (delivered / sent), 0 before any request.
    pub fn response_rate(&self) -> f64 {
        if self.requests_sent == 0 {
            0.0
        } else {
            self.responses_delivered as f64 / self.requests_sent as f64
        }
    }

    /// Replaces every sensor's participation model — the "participation
    /// collapse / recovery" lever used by the budget-tuning experiments.
    pub fn set_all_response_models(&mut self, model: crate::response::ResponseModel) {
        for s in &mut self.sensors {
            s.set_response_model(model);
        }
    }

    /// Scales every sensor's base response probability by `factor`
    /// (clamped to `[0, 1]`) — the "participation surge / fatigue" lever
    /// behind mid-run rate-jump scenarios. Deterministic: no RNG draw.
    ///
    /// # Panics
    /// Panics on a negative or non-finite factor.
    #[track_caller]
    pub fn scale_participation(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be >= 0, got {factor}");
        for s in &mut self.sensors {
            let m = *s.response_model();
            s.set_response_model(crate::response::ResponseModel {
                base_probability: (m.base_probability * factor).clamp(0.0, 1.0),
                ..m
            });
        }
    }

    /// Correlated dropout: every sensor currently inside `rect`
    /// independently goes silent with probability `p` (its response
    /// probability becomes 0; the body keeps moving, so the population
    /// count — and the request fan-out — is unchanged). This is the
    /// failure mode of a regional outage: an app update bricking one
    /// city's fleet, a carrier losing a cell.
    ///
    /// # Panics
    /// Panics when `p` is outside `[0, 1]`.
    #[track_caller]
    pub fn drop_region(&mut self, rect: &Rect, p: f64) {
        assert!((0.0..=1.0).contains(&p), "dropout probability must be in [0,1], got {p}");
        for s in &mut self.sensors {
            let (x, y) = s.position();
            if rect.contains(x, y) && self.participation_rng.gen::<f64>() < p {
                let m = *s.response_model();
                s.set_response_model(crate::response::ResponseModel {
                    base_probability: 0.0,
                    incentive_sensitivity: 0.0,
                    ..m
                });
            }
        }
    }

    /// Hotspot migration: every sensor independently relocates into
    /// `target` with probability `p` (uniform position inside the target,
    /// mobility and participation models kept). Models the crowd following
    /// an event — a stadium emptying, a festival starting.
    ///
    /// # Panics
    /// Panics when `p` is outside `[0, 1]`, or when `target` is degenerate
    /// (zero width or height — there is nowhere to place a migrant).
    #[track_caller]
    pub fn migrate(&mut self, p: f64, target: &Rect) {
        assert!((0.0..=1.0).contains(&p), "migration probability must be in [0,1], got {p}");
        assert!(
            target.x0 < target.x1 && target.y0 < target.y1,
            "migration target must have positive area, got {target}"
        );
        for s in &mut self.sensors {
            if self.participation_rng.gen::<f64>() < p {
                let pos = (
                    self.participation_rng.gen_range(target.x0..target.x1),
                    self.participation_rng.gen_range(target.y0..target.y1),
                );
                s.set_position(pos);
            }
        }
    }

    /// Injects sensor churn: every sensor independently drops out with
    /// probability `p` (replaced by a fresh sensor at a random position, so
    /// the population size is stable but continuity is broken). Failure
    /// injection for the Section VI error experiments.
    pub fn churn(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "churn probability must be in [0,1]");
        let region = self.region;
        for s in &mut self.sensors {
            if self.participation_rng.gen::<f64>() < p {
                let pos = (
                    self.participation_rng.gen_range(region.x0..region.x1),
                    self.participation_rng.gen_range(region.y0..region.y1),
                );
                *s = MobileSensor::new(
                    s.id(),
                    pos,
                    crate::mobility::Mobility::random_waypoint(0.08, 5.0),
                    *s.response_model(),
                );
            }
        }
    }
}

/// The total order [`Crowd::drain_responses`] sorts by: delivery time,
/// then sensor, attribute, and issue time as tie-breaks. Responses equal
/// under this key are fully interchangeable (same sensor observing the
/// same field at the same instant), so any stream sorted by it is
/// uniquely determined by its response *set*.
fn response_order(a: &SensorResponse, b: &SensorResponse) -> std::cmp::Ordering {
    a.measurement
        .point
        .t
        .total_cmp(&b.measurement.point.t)
        .then_with(|| a.sensor.0.cmp(&b.sensor.0))
        .then_with(|| a.measurement.attr.0.cmp(&b.measurement.attr.0))
        .then_with(|| a.issued_at.total_cmp(&b.issued_at))
}

/// Merges shard-partitioned response lists back into the single
/// delivery-time-ordered stream [`Crowd::drain_responses`] would have
/// produced — exact even under delivery-time ties, because both sides
/// sort by the same total order. The inverse of
/// [`Crowd::drain_responses_sharded`].
pub fn merge_sharded_responses(shards: Vec<Vec<SensorResponse>>) -> Vec<SensorResponse> {
    let mut out: Vec<SensorResponse> = shards.into_iter().flatten().collect();
    out.sort_by(response_order);
    out
}

impl std::fmt::Debug for Crowd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Crowd")
            .field("now", &self.now)
            .field("sensors", &self.sensors.len())
            .field("pending", &self.pending.len())
            .field("requests_sent", &self.requests_sent)
            .field("responses_delivered", &self.responses_delivered)
            .field("responses_dropped", &self.responses_dropped)
            .field("responses_delayed", &self.responses_delayed)
            .field("responses_duplicated", &self.responses_duplicated)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::{ConstantField, RainFront};
    use crate::mobility::Mobility;
    use crate::population::{Placement, PopulationConfig};
    use crate::types::AttrValue;

    fn crowd(size: usize, seed: u64) -> Crowd {
        let region = Rect::with_size(10.0, 10.0);
        let mut c = Crowd::new(CrowdConfig {
            region,
            population: PopulationConfig {
                size,
                placement: Placement::Uniform,
                mobility: Mobility::RandomWalk { sigma: 0.1 },
                human_fraction: 0.0,
            },
            seed,
        });
        c.register_field(AttributeId(0), Box::new(ConstantField(AttrValue::Float(1.0))));
        c
    }

    #[test]
    fn step_advances_time_and_sensors() {
        let mut c = crowd(10, 1);
        let before: Vec<_> = c.sensors().iter().map(|s| s.position()).collect();
        c.step(1.0);
        assert_eq!(c.now(), 1.0);
        let after: Vec<_> = c.sensors().iter().map(|s| s.position()).collect();
        assert_ne!(before, after);
    }

    #[test]
    fn automatic_sensors_answer_quickly() {
        let mut c = crowd(200, 2);
        let sent = c.dispatch_requests(AttributeId(0), &c.region(), 100, 0.0);
        assert_eq!(sent, 100);
        // Automatic sensors: p=0.95, latency mean 0.05 min. One minute is
        // plenty of time for all accepted answers.
        c.step(1.0);
        let responses = c.drain_responses();
        assert!(responses.len() >= 85, "got {}", responses.len());
        assert!(c.response_rate() > 0.85);
        for r in &responses {
            assert!(r.measurement.point.t <= 1.0);
            assert_eq!(r.issued_at, 0.0);
        }
    }

    #[test]
    fn requests_to_empty_cell_send_nothing() {
        let mut c = crowd(5, 3);
        // A rect certainly holding no sensor (outside the region corner).
        let empty = Rect::new(9.99, 9.99, 9.999, 9.999);
        let sent = c.dispatch_requests(AttributeId(0), &empty, 10, 0.0);
        assert_eq!(sent, 0);
    }

    #[test]
    fn oversampling_uses_replacement() {
        let mut c = crowd(3, 4);
        // Ask for many more requests than sensors: all 20 go out (with
        // replacement), targeting the 3 sensors repeatedly.
        let sent = c.dispatch_requests(AttributeId(0), &c.region(), 20, 0.0);
        assert_eq!(sent, 20);
        c.step(1.0);
        let responses = c.drain_responses();
        assert!(responses.len() > 10, "got {}", responses.len());
        // Only three distinct sensors can have answered.
        let mut ids: Vec<u64> = responses.iter().map(|r| r.sensor.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert!(ids.len() <= 3);
    }

    #[test]
    fn responses_carry_answer_time_position_value() {
        let region = Rect::with_size(10.0, 10.0);
        let mut c = Crowd::new(CrowdConfig {
            region,
            population: PopulationConfig {
                size: 50,
                placement: Placement::Uniform,
                mobility: Mobility::Stationary,
                human_fraction: 0.0,
            },
            seed: 5,
        });
        // Rain front across half the region at all times.
        c.register_field(AttributeId(1), Box::new(RainFront::new(5.0, 0.0, 5.0)));
        c.dispatch_requests(AttributeId(1), &region, 50, 0.0);
        c.step(0.5);
        for r in c.drain_responses() {
            let expect = r.measurement.point.x < 5.0;
            assert_eq!(r.measurement.value, AttrValue::Bool(expect));
        }
    }

    #[test]
    fn slow_responses_arrive_in_later_steps() {
        let region = Rect::with_size(10.0, 10.0);
        let mut c = Crowd::new(CrowdConfig {
            region,
            population: PopulationConfig {
                size: 300,
                placement: Placement::Uniform,
                mobility: Mobility::Stationary,
                human_fraction: 1.0, // humans: mean latency 2 min
            },
            seed: 6,
        });
        c.register_field(AttributeId(0), Box::new(ConstantField(AttrValue::Bool(true))));
        c.dispatch_requests(AttributeId(0), &region, 300, 5.0);
        c.step(0.25);
        let early = c.drain_responses().len();
        for _ in 0..40 {
            c.step(0.5);
        }
        let late = c.drain_responses().len();
        assert!(late > early, "early {early}, late {late}");
    }

    #[test]
    #[should_panic(expected = "no field registered")]
    fn unregistered_attribute_panics() {
        let mut c = crowd(5, 7);
        let region = c.region();
        let _ = c.dispatch_requests(AttributeId(9), &region, 1, 0.0);
    }

    #[test]
    fn same_seed_reproduces_world() {
        let run = |seed| {
            let mut c = crowd(100, seed);
            c.dispatch_requests(AttributeId(0), &c.region(), 50, 0.0);
            c.step(1.0);
            c.drain_responses().len()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn sharded_drain_partitions_by_cell_and_merges_back() {
        let run = |seed| {
            let mut c = crowd(300, seed);
            c.dispatch_requests(AttributeId(0), &c.region(), 200, 0.0);
            c.step(1.0);
            c
        };
        // Two identical worlds: one drains serially, one sharded.
        let serial = run(77).drain_responses();
        let grid = Grid::new(Rect::with_size(10.0, 10.0), 4);
        let sharded = run(77).drain_responses_sharded(&grid, 3);

        assert_eq!(sharded.len(), 3);
        assert!(!serial.is_empty());
        // Every response sits on the shard owning its cell, time-ordered.
        for (shard, list) in sharded.iter().enumerate() {
            for pair in list.windows(2) {
                assert!(pair[0].measurement.point.t <= pair[1].measurement.point.t);
            }
            for r in list {
                let expect = grid
                    .cell_of(r.measurement.point.x, r.measurement.point.y)
                    .map_or(0, |c| ((c.r * grid.side() + c.q) as usize) % 3);
                assert_eq!(shard, expect);
            }
        }
        // Merge is the exact inverse: the serial stream reappears.
        let merged = merge_sharded_responses(sharded);
        assert_eq!(merged, serial);
        // And draining again yields nothing (the drain consumed).
        assert!(run(77).drain_responses_sharded(&grid, 3).concat().len() == serial.len());
    }

    #[test]
    fn scale_participation_changes_response_volume() {
        let run = |factor: Option<f64>| {
            let mut c = crowd(300, 21);
            if let Some(f) = factor {
                c.scale_participation(f);
            }
            c.dispatch_requests(AttributeId(0), &c.region(), 200, 0.0);
            c.step(1.0);
            c.drain_responses().len()
        };
        let base = run(None);
        assert!(run(Some(0.1)) < base / 2, "fatigue must cut responses");
        // Automatic sensors already answer at 0.95; scaling up saturates.
        assert!(run(Some(2.0)) >= base);
    }

    #[test]
    fn drop_region_silences_only_the_region() {
        let mut c = crowd(400, 22);
        let west = Rect::new(0.0, 0.0, 5.0, 10.0);
        c.drop_region(&west, 1.0);
        c.dispatch_requests(AttributeId(0), &c.region(), 400, 0.0);
        c.step(1.0);
        let responses = c.drain_responses();
        assert!(!responses.is_empty());
        // Stationary-ish walkers: responders overwhelmingly sit east.
        let west_hits = responses.iter().filter(|r| r.measurement.point.x < 5.0).count();
        assert!(
            (west_hits as f64) < responses.len() as f64 * 0.1,
            "west responses {west_hits}/{} after total west dropout",
            responses.len()
        );
    }

    #[test]
    fn migrate_concentrates_the_crowd() {
        let mut c = crowd(500, 23);
        let corner = Rect::new(0.0, 0.0, 2.0, 2.0);
        c.migrate(0.8, &corner);
        let inside = c.sensors_in(&corner).len();
        assert!(inside > 350, "migration left only {inside} sensors in the target");
    }

    #[test]
    fn default_faults_leave_the_world_byte_identical() {
        let run = |set_defaults: bool| {
            let mut c = crowd(200, 31);
            if set_defaults {
                c.set_faults(CrowdFaults::default());
            }
            c.dispatch_requests(AttributeId(0), &c.region(), 150, 0.0);
            c.step(1.0);
            c.drain_responses()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn drop_fault_swallows_everything_at_p1() {
        let mut c = crowd(200, 32);
        c.set_faults(CrowdFaults { drop_probability: 1.0, ..Default::default() });
        c.dispatch_requests(AttributeId(0), &c.region(), 150, 0.0);
        c.step(5.0);
        assert!(c.drain_responses().is_empty());
        assert!(c.responses_dropped() > 100, "dropped {}", c.responses_dropped());
        assert_eq!(c.responses_delivered(), 0);
    }

    #[test]
    fn delay_fault_defers_but_never_loses() {
        let baseline = {
            let mut c = crowd(200, 33);
            c.dispatch_requests(AttributeId(0), &c.region(), 150, 0.0);
            c.step(0.5);
            c.drain_responses().len()
        };
        let mut c = crowd(200, 33);
        c.set_faults(CrowdFaults {
            delay_probability: 0.8,
            delay_minutes: 1.0,
            ..Default::default()
        });
        c.dispatch_requests(AttributeId(0), &c.region(), 150, 0.0);
        c.step(0.5);
        let early = c.drain_responses();
        assert!(early.len() < baseline / 2, "early {} vs baseline {baseline}", early.len());
        assert!(c.responses_delayed() > 0);
        // Delays are finite deferrals: everything eventually arrives. The
        // deferral count per response is geometric (p = 0.8 re-drawn at
        // each re-maturation), so give the tail generous room.
        for _ in 0..150 {
            c.step(1.0);
        }
        let late = c.drain_responses();
        assert_eq!(early.len() + late.len(), baseline, "delay must not lose responses");
        // Delayed answers carry their (later) answer-time measurements.
        assert!(late.iter().all(|r| r.measurement.point.t > 0.5));
    }

    #[test]
    fn duplicate_fault_doubles_delivery_at_p1() {
        let mut c = crowd(200, 34);
        c.set_faults(CrowdFaults { duplicate_probability: 1.0, ..Default::default() });
        c.dispatch_requests(AttributeId(0), &c.region(), 100, 0.0);
        c.step(2.0);
        let responses = c.drain_responses();
        assert!(!responses.is_empty());
        assert_eq!(responses.len() as u64, c.responses_delivered());
        assert_eq!(c.responses_duplicated() * 2, c.responses_delivered());
        // Every response appears exactly twice, adjacent under the order.
        for pair in responses.chunks(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    fn faults_are_deterministic_per_seed() {
        let run = || {
            let mut c = crowd(300, 35);
            c.set_faults(CrowdFaults {
                drop_probability: 0.3,
                delay_probability: 0.3,
                delay_minutes: 1.5,
                duplicate_probability: 0.3,
            });
            c.dispatch_requests(AttributeId(0), &c.region(), 200, 0.0);
            for _ in 0..10 {
                c.step(1.0);
            }
            (c.drain_responses(), c.responses_dropped(), c.responses_duplicated())
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "delay_minutes must be finite and > 0")]
    fn zero_delay_with_active_probability_is_rejected() {
        let mut c = crowd(5, 36);
        c.set_faults(CrowdFaults { delay_probability: 0.5, ..Default::default() });
    }

    #[test]
    #[should_panic(expected = "drop_probability must be in [0,1]")]
    fn out_of_range_probability_is_rejected() {
        let mut c = crowd(5, 37);
        c.set_faults(CrowdFaults { drop_probability: 1.5, ..Default::default() });
    }

    #[test]
    fn churn_replaces_sensors() {
        let mut c = crowd(100, 8);
        let before: Vec<_> = c.sensors().iter().map(|s| s.position()).collect();
        c.churn(1.0);
        let after: Vec<_> = c.sensors().iter().map(|s| s.position()).collect();
        let moved = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        assert!(moved > 90, "churn(1.0) must replace nearly all, moved {moved}");
    }
}
