//! One mobile sensor.

use crate::fields::Field;
use crate::mobility::Mobility;
use crate::response::ResponseModel;
use crate::types::{AttributeId, Measurement, SensorId};
use craqr_geom::{Rect, SpaceTimePoint};
use rand::Rng;
use std::collections::VecDeque;

/// A mobile sensor `sᵢ`: position, movement model, participation behaviour,
/// and the local memory the paper grants every sensor ("each mobile sensor
/// is assumed to have local memory to store sensed information").
#[derive(Debug, Clone)]
pub struct MobileSensor {
    id: SensorId,
    position: (f64, f64),
    mobility: Mobility,
    response: ResponseModel,
    memory: VecDeque<Measurement>,
    memory_capacity: usize,
}

impl MobileSensor {
    /// Creates a sensor at `position`.
    pub fn new(
        id: SensorId,
        position: (f64, f64),
        mobility: Mobility,
        response: ResponseModel,
    ) -> Self {
        Self { id, position, mobility, response, memory: VecDeque::new(), memory_capacity: 256 }
    }

    /// Overrides the local-memory capacity (measurements retained).
    pub fn with_memory_capacity(mut self, capacity: usize) -> Self {
        self.memory_capacity = capacity;
        self.memory.truncate(capacity);
        self
    }

    /// The sensor id.
    #[inline]
    pub fn id(&self) -> SensorId {
        self.id
    }

    /// Current position (km).
    #[inline]
    pub fn position(&self) -> (f64, f64) {
        self.position
    }

    /// The participation model.
    #[inline]
    pub fn response_model(&self) -> &ResponseModel {
        &self.response
    }

    /// Replaces the participation model — availability changes (opt-outs,
    /// incentive fatigue, app updates) happen to real crowds mid-stream,
    /// and experiments inject them through this.
    pub fn set_response_model(&mut self, model: ResponseModel) {
        self.response = model;
    }

    /// Teleports the sensor — the crowd-level migration lever
    /// ([`crate::Crowd::migrate`]) relocating participants mid-run.
    pub fn set_position(&mut self, position: (f64, f64)) {
        self.position = position;
    }

    /// Advances the sensor by `dt` minutes inside `region`.
    pub fn advance<R: Rng + ?Sized>(&mut self, dt: f64, region: &Rect, rng: &mut R) {
        self.position = self.mobility.step(self.position, dt, region, rng);
    }

    /// Samples `field` at the sensor's position at time `now`, storing the
    /// measurement in local memory and returning it.
    pub fn observe(&mut self, attr: AttributeId, field: &dyn Field, now: f64) -> Measurement {
        let point = SpaceTimePoint::new(now, self.position.0, self.position.1);
        let m = Measurement { attr, point, value: field.value_at(&point) };
        if self.memory.len() == self.memory_capacity {
            self.memory.pop_front();
        }
        if self.memory_capacity > 0 {
            self.memory.push_back(m);
        }
        m
    }

    /// Decides whether (and with what latency, in minutes) the sensor will
    /// answer a request carrying `incentive`.
    pub fn decide_response<R: Rng + ?Sized>(&self, incentive: f64, rng: &mut R) -> Option<f64> {
        self.response.draw_response(incentive, rng)
    }

    /// Measurements retained in local memory, oldest first.
    pub fn memory(&self) -> impl Iterator<Item = &Measurement> {
        self.memory.iter()
    }

    /// The most recent remembered measurement of `attr` not older than
    /// `since` — lets the handler reuse a cached observation instead of
    /// demanding a new one.
    pub fn recall(&self, attr: AttributeId, since: f64) -> Option<&Measurement> {
        self.memory.iter().rev().find(|m| m.attr == attr && m.point.t >= since)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::ConstantField;
    use crate::types::AttrValue;
    use craqr_stats::seeded_rng;

    fn sensor() -> MobileSensor {
        MobileSensor::new(SensorId(1), (2.0, 3.0), Mobility::Stationary, ResponseModel::automatic())
    }

    #[test]
    fn observe_records_into_memory() {
        let mut s = sensor();
        let field = ConstantField(AttrValue::Float(7.0));
        let m = s.observe(AttributeId(0), &field, 5.0);
        assert_eq!(m.point, SpaceTimePoint::new(5.0, 2.0, 3.0));
        assert_eq!(m.value, AttrValue::Float(7.0));
        assert_eq!(s.memory().count(), 1);
    }

    #[test]
    fn memory_is_capacity_bounded() {
        let mut s = sensor().with_memory_capacity(3);
        let field = ConstantField(AttrValue::Bool(true));
        for t in 0..10 {
            s.observe(AttributeId(0), &field, t as f64);
        }
        assert_eq!(s.memory().count(), 3);
        // Oldest remaining is t=7.
        assert_eq!(s.memory().next().unwrap().point.t, 7.0);
    }

    #[test]
    fn zero_capacity_memory_stores_nothing() {
        let mut s = sensor().with_memory_capacity(0);
        let field = ConstantField(AttrValue::Bool(true));
        s.observe(AttributeId(0), &field, 1.0);
        assert_eq!(s.memory().count(), 0);
    }

    #[test]
    fn recall_finds_fresh_measurement_of_right_attr() {
        let mut s = sensor();
        let f0 = ConstantField(AttrValue::Float(1.0));
        let f1 = ConstantField(AttrValue::Float(2.0));
        s.observe(AttributeId(0), &f0, 1.0);
        s.observe(AttributeId(1), &f1, 2.0);
        s.observe(AttributeId(0), &f0, 3.0);

        let hit = s.recall(AttributeId(0), 2.5).expect("fresh measurement exists");
        assert_eq!(hit.point.t, 3.0);
        assert!(s.recall(AttributeId(0), 3.5).is_none(), "too-strict freshness");
        assert!(s.recall(AttributeId(9), 0.0).is_none(), "unknown attribute");
    }

    #[test]
    fn advance_moves_walker() {
        let mut s = MobileSensor::new(
            SensorId(2),
            (5.0, 5.0),
            Mobility::RandomWalk { sigma: 1.0 },
            ResponseModel::automatic(),
        );
        let before = s.position();
        s.advance(1.0, &Rect::with_size(10.0, 10.0), &mut seeded_rng(1));
        assert_ne!(s.position(), before);
    }
}
