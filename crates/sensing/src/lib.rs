//! Mobile-crowd simulator for CrAQR.
//!
//! The paper's system talks to a crowd of `m` mobile sensors
//! (`s₁ … s_m`) — smartphones, vehicle-mounted sensors, humans — through a
//! single narrow interface: the request/response handler sends *acquisition
//! requests* to randomly selected sensors and later receives *responses*
//! `(t, x, y, a)` with unpredictable delay and unpredictable participation
//! (Section II–III). The crowd's mobility makes the resulting stream
//! spatio-temporally skewed, which is the entire motivation for flattening.
//!
//! This crate simulates that crowd faithfully:
//!
//! - [`mobility`] — per-sensor movement: stationary, random walk, random
//!   waypoint, and Gauss–Markov models with boundary reflection.
//! - [`fields`] — ground-truth phenomena to sense: a moving [`fields::RainFront`]
//!   (the paper's human-sensed `rain` attribute) and a
//!   [`fields::TemperatureField`] with hotspots and a diurnal cycle (the
//!   sensor-sensed `temp` attribute).
//! - [`response`] — human/sensor participation behaviour: response
//!   probability as a function of the offered incentive (the Section VI
//!   extension) and exponentially distributed response latency.
//! - [`population`] — spatially *skewed* sensor placement (hotspot
//!   mixtures), producing exactly the non-uniform density the paper says
//!   crowdsensed data exhibits.
//! - [`crowd`] — the world object: advances sensor positions, accepts
//!   request batches, matures delayed responses.
//! - [`transport`] — framed binary encoding of requests/responses plus a
//!   lossy in-process channel for failure injection.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod crowd;
pub mod fields;
pub mod mobility;
pub mod population;
pub mod response;
pub mod sensor;
pub mod transport;
mod types;

pub use crowd::{merge_sharded_responses, Crowd, CrowdConfig, CrowdFaults};
pub use fields::{Field, RainFront, TemperatureField};
pub use mobility::Mobility;
pub use population::{Placement, PopulationConfig};
pub use response::ResponseModel;
pub use sensor::MobileSensor;
pub use types::{
    AcquisitionRequest, AttrValue, AttributeId, Measurement, SensorId, SensorResponse,
};
