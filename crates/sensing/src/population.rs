//! Skewed sensor populations.
//!
//! "The number of mobile sensors in a particular region and time is
//! unpredictable and is spatio-temporally skewed" (Section I). A
//! [`PopulationConfig`] turns that sentence into data: how many sensors,
//! how they are placed (uniform or hotspot-clustered), how they move, and
//! what fraction are humans versus automatic sensors.

use crate::mobility::Mobility;
use crate::response::ResponseModel;
use crate::sensor::MobileSensor;
use crate::types::SensorId;
use craqr_geom::Rect;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Spatial placement of the initial sensor positions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Placement {
    /// Uniform over the region (the WSN-like baseline).
    Uniform,
    /// Mixture of Gaussian hotspots over a uniform floor. Each hotspot is
    /// `(cx, cy, weight, sigma)`; `floor` is the relative weight of the
    /// uniform component.
    Hotspots {
        /// The hotspots `(cx, cy, weight, sigma)`.
        spots: Vec<(f64, f64, f64, f64)>,
        /// Relative weight of the uniform floor component (≥ 0).
        floor: f64,
    },
}

impl Placement {
    /// Builds a hotspot placement from spec data, validating instead of
    /// panicking: every `(cx, cy, weight, sigma)` needs `weight >= 0` and
    /// `sigma > 0`, `floor >= 0`, and the total weight must be positive.
    /// The data-driven entry point for declarative scenario specs.
    pub fn hotspots(spots: Vec<(f64, f64, f64, f64)>, floor: f64) -> Result<Self, String> {
        if !(floor.is_finite() && floor >= 0.0) {
            return Err(format!("hotspot floor must be >= 0, got {floor}"));
        }
        for (i, &(cx, cy, weight, sigma)) in spots.iter().enumerate() {
            if !(cx.is_finite() && cy.is_finite()) {
                return Err(format!("hotspot {i} centre must be finite"));
            }
            if !(weight.is_finite() && weight >= 0.0) {
                return Err(format!("hotspot {i} weight must be >= 0, got {weight}"));
            }
            if !(sigma.is_finite() && sigma > 0.0) {
                return Err(format!("hotspot {i} sigma must be > 0, got {sigma}"));
            }
        }
        let total: f64 = floor + spots.iter().map(|s| s.2).sum::<f64>();
        if total <= 0.0 {
            return Err("hotspot placement needs positive total weight".into());
        }
        Ok(Placement::Hotspots { spots, floor })
    }

    /// A typical two-hotspot city: dense downtown, smaller secondary centre.
    pub fn city(region: &Rect) -> Self {
        let (cx, cy) = region.center();
        Placement::Hotspots {
            spots: vec![
                (cx, cy, 6.0, region.width() * 0.08),
                (
                    region.x0 + region.width() * 0.8,
                    region.y0 + region.height() * 0.25,
                    3.0,
                    region.width() * 0.05,
                ),
            ],
            floor: 1.0,
        }
    }

    /// Samples one position in `region` according to the placement law.
    pub fn sample<R: Rng + ?Sized>(&self, region: &Rect, rng: &mut R) -> (f64, f64) {
        match self {
            Placement::Uniform => {
                (rng.gen_range(region.x0..region.x1), rng.gen_range(region.y0..region.y1))
            }
            Placement::Hotspots { spots, floor } => {
                let total: f64 = floor + spots.iter().map(|s| s.2).sum::<f64>();
                assert!(total > 0.0, "placement weights must be positive");
                let mut pick = rng.gen::<f64>() * total;
                if pick < *floor {
                    return (
                        rng.gen_range(region.x0..region.x1),
                        rng.gen_range(region.y0..region.y1),
                    );
                }
                pick -= floor;
                for &(cx, cy, weight, sigma) in spots {
                    if pick < weight {
                        // Gaussian around the hotspot, resampled into the region.
                        let normal = craqr_stats::dist::Normal::new(0.0, sigma);
                        for _ in 0..64 {
                            use rand::distributions::Distribution;
                            let x = cx + normal.sample(rng);
                            let y = cy + normal.sample(rng);
                            if region.contains(x, y) {
                                return (x, y);
                            }
                        }
                        // Hotspot mostly outside the region: fall back to
                        // clamped placement at the nearest in-region point.
                        return (
                            cx.clamp(region.x0, region.x1 - 1e-9),
                            cy.clamp(region.y0, region.y1 - 1e-9),
                        );
                    }
                    pick -= weight;
                }
                unreachable!("weights exhausted before total")
            }
        }
    }
}

/// Configuration of a sensor population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Number of sensors `m`.
    pub size: usize,
    /// Initial placement law.
    pub placement: Placement,
    /// Mobility template cloned into each sensor.
    pub mobility: Mobility,
    /// Fraction of sensors that are humans (response behaviour
    /// [`ResponseModel::human`]); the rest are automatic.
    pub human_fraction: f64,
}

impl PopulationConfig {
    /// A convenient default crowd: 500 walkers, city placement, 40% humans.
    pub fn city_default(region: &Rect) -> Self {
        Self {
            size: 500,
            placement: Placement::city(region),
            mobility: Mobility::random_waypoint(0.08, 5.0),
            human_fraction: 0.4,
        }
    }

    /// Checks the knobs a declarative spec can set, returning the first
    /// violated constraint as `(field, requirement)` — the non-panicking
    /// twin of [`PopulationConfig::build`]'s assertions.
    pub fn validate(&self) -> Result<(), (&'static str, String)> {
        if self.size == 0 {
            return Err(("population.size", "must be >= 1 (an empty crowd senses nothing)".into()));
        }
        if !(0.0..=1.0).contains(&self.human_fraction) {
            return Err((
                "population.human_fraction",
                format!("must be in [0,1], got {}", self.human_fraction),
            ));
        }
        if let Placement::Hotspots { spots, floor } = &self.placement {
            Placement::hotspots(spots.clone(), *floor).map_err(|e| ("population.placement", e))?;
        }
        Ok(())
    }

    /// Materializes the population.
    ///
    /// # Panics
    /// Panics when `human_fraction ∉ [0, 1]`.
    pub fn build<R: Rng + ?Sized>(&self, region: &Rect, rng: &mut R) -> Vec<MobileSensor> {
        assert!((0.0..=1.0).contains(&self.human_fraction), "human fraction must be in [0,1]");
        (0..self.size)
            .map(|i| {
                let pos = self.placement.sample(region, rng);
                let response = if rng.gen::<f64>() < self.human_fraction {
                    ResponseModel::human()
                } else {
                    ResponseModel::automatic()
                };
                MobileSensor::new(SensorId(i as u64), pos, self.mobility.clone(), response)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craqr_stats::seeded_rng;

    fn region() -> Rect {
        Rect::with_size(10.0, 10.0)
    }

    #[test]
    fn uniform_placement_fills_region_evenly() {
        let mut rng = seeded_rng(1);
        let p = Placement::Uniform;
        let n = 20_000;
        let left = (0..n).map(|_| p.sample(&region(), &mut rng)).filter(|(x, _)| *x < 5.0).count();
        let frac = left as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "left fraction {frac}");
    }

    #[test]
    fn hotspot_placement_is_skewed() {
        let mut rng = seeded_rng(2);
        let p = Placement::Hotspots { spots: vec![(2.0, 2.0, 9.0, 0.5)], floor: 1.0 };
        let n = 20_000;
        let near = (0..n)
            .map(|_| p.sample(&region(), &mut rng))
            .filter(|(x, y)| ((x - 2.0).powi(2) + (y - 2.0).powi(2)).sqrt() < 1.5)
            .count();
        let frac = near as f64 / n as f64;
        // ~90% of mass sits in the hotspot; nearly all of it within 3σ.
        assert!(frac > 0.7, "hotspot fraction {frac}");
    }

    #[test]
    fn placement_never_escapes_region() {
        let mut rng = seeded_rng(3);
        // Hotspot centred outside the region: worst case for resampling.
        let p = Placement::Hotspots { spots: vec![(-5.0, -5.0, 1.0, 0.1)], floor: 0.0 };
        for _ in 0..500 {
            let (x, y) = p.sample(&region(), &mut rng);
            assert!(region().contains(x, y), "escaped to ({x}, {y})");
        }
    }

    #[test]
    fn build_population_has_requested_size_and_mix() {
        let cfg = PopulationConfig {
            size: 1_000,
            placement: Placement::Uniform,
            mobility: Mobility::Stationary,
            human_fraction: 0.25,
        };
        let mut rng = seeded_rng(4);
        let sensors = cfg.build(&region(), &mut rng);
        assert_eq!(sensors.len(), 1_000);
        let humans = sensors
            .iter()
            .filter(|s| s.response_model().mean_latency == ResponseModel::human().mean_latency)
            .count();
        let frac = humans as f64 / 1_000.0;
        assert!((frac - 0.25).abs() < 0.05, "human fraction {frac}");
        // Distinct ids.
        let mut ids: Vec<u64> = sensors.iter().map(|s| s.id().0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 1_000);
    }

    #[test]
    fn hotspots_constructor_validates() {
        assert!(Placement::hotspots(vec![(1.0, 1.0, 2.0, 0.5)], 0.0).is_ok());
        assert!(Placement::hotspots(vec![(1.0, 1.0, 2.0, 0.0)], 0.0).is_err(), "zero sigma");
        assert!(Placement::hotspots(vec![(1.0, 1.0, -1.0, 0.5)], 0.0).is_err(), "negative weight");
        assert!(Placement::hotspots(vec![], 0.0).is_err(), "zero total weight");
        assert!(Placement::hotspots(vec![], 1.0).is_ok(), "pure uniform floor");
    }

    #[test]
    fn population_validate_catches_spec_errors() {
        let ok = PopulationConfig {
            size: 10,
            placement: Placement::Uniform,
            mobility: Mobility::Stationary,
            human_fraction: 0.5,
        };
        assert!(ok.validate().is_ok());
        assert_eq!(
            PopulationConfig { size: 0, ..ok.clone() }.validate().unwrap_err().0,
            "population.size"
        );
        assert_eq!(
            PopulationConfig { human_fraction: 1.5, ..ok.clone() }.validate().unwrap_err().0,
            "population.human_fraction"
        );
        let bad_spots = PopulationConfig {
            placement: Placement::Hotspots { spots: vec![(0.0, 0.0, 1.0, -1.0)], floor: 0.0 },
            ..ok
        };
        assert_eq!(bad_spots.validate().unwrap_err().0, "population.placement");
    }

    #[test]
    fn city_default_builds() {
        let cfg = PopulationConfig::city_default(&region());
        let sensors = cfg.build(&region(), &mut seeded_rng(5));
        assert_eq!(sensors.len(), 500);
        for s in &sensors {
            let (x, y) = s.position();
            assert!(region().contains(x, y));
        }
    }
}
