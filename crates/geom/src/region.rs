//! Unions of disjoint rectangles.

use crate::{Rect, GEOM_EPS};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A region made of pairwise-disjoint axis-aligned rectangles.
///
/// Query footprints become regions the moment they are intersected with the
/// grid: a query rectangle splits into one overlap piece per touched cell,
/// and the fabricator's final `U`-operator chain reassembles the per-cell
/// streams over exactly this set of pieces (Fig. 2c). `Region` keeps the
/// pieces canonicalized — adjacent pieces that share a full common side are
/// greedily merged, mirroring the `U` operator's precondition.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Region {
    rects: Vec<Rect>,
}

impl Region {
    /// The empty region.
    pub fn empty() -> Self {
        Self { rects: Vec::new() }
    }

    /// A region made of a single rectangle.
    pub fn from_rect(rect: Rect) -> Self {
        Self { rects: vec![rect] }
    }

    /// Builds a region from parts, verifying pairwise disjointness and
    /// canonicalizing (merging side-adjacent parts).
    ///
    /// # Panics
    /// Panics when two parts overlap: the planner must never produce
    /// double-covered area, otherwise a tuple would be delivered twice.
    #[track_caller]
    pub fn from_disjoint(rects: Vec<Rect>) -> Self {
        for (i, a) in rects.iter().enumerate() {
            for b in &rects[i + 1..] {
                assert!(!a.intersects(b), "region parts overlap: {a} and {b}");
            }
        }
        let mut region = Self { rects };
        region.canonicalize();
        region
    }

    /// The rectangles making up the region (pairwise disjoint, canonical).
    #[inline]
    pub fn parts(&self) -> &[Rect] {
        &self.rects
    }

    /// Number of rectangle parts after canonicalization.
    #[inline]
    pub fn part_count(&self) -> usize {
        self.rects.len()
    }

    /// `true` when the region covers nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Total area (km²). Parts are disjoint so the sum is exact.
    pub fn area(&self) -> f64 {
        self.rects.iter().map(Rect::area).sum()
    }

    /// Point containment (half-open per part).
    pub fn contains(&self, x: f64, y: f64) -> bool {
        self.rects.iter().any(|r| r.contains(x, y))
    }

    /// Axis-aligned bounding box, or `None` for the empty region.
    pub fn bounding_box(&self) -> Option<Rect> {
        let first = self.rects.first()?;
        let mut bb = *first;
        for r in &self.rects[1..] {
            bb = Rect::new(bb.x0.min(r.x0), bb.y0.min(r.y0), bb.x1.max(r.x1), bb.y1.max(r.y1));
        }
        Some(bb)
    }

    /// Intersects the region with a rectangle.
    pub fn intersect_rect(&self, rect: &Rect) -> Region {
        let parts = self.rects.iter().filter_map(|r| r.intersection(rect)).collect();
        let mut out = Region { rects: parts };
        out.canonicalize();
        out
    }

    /// Adds a rectangle known to be disjoint from the current parts.
    ///
    /// # Panics
    /// Panics when `rect` overlaps an existing part.
    #[track_caller]
    pub fn push_disjoint(&mut self, rect: Rect) {
        for r in &self.rects {
            assert!(!r.intersects(&rect), "new part {rect} overlaps existing {r}");
        }
        self.rects.push(rect);
        self.canonicalize();
    }

    /// Unions two regions whose parts are mutually disjoint.
    ///
    /// # Panics
    /// Panics on overlap, mirroring [`Region::push_disjoint`].
    #[track_caller]
    pub fn union_disjoint(&self, other: &Region) -> Region {
        let mut rects = self.rects.clone();
        rects.extend_from_slice(&other.rects);
        Region::from_disjoint(rects)
    }

    /// `true` when both regions cover the same point set (compared on
    /// canonical parts, order-independently, within [`GEOM_EPS`]).
    pub fn covers_same_area(&self, other: &Region) -> bool {
        if self.rects.len() != other.rects.len() {
            // Canonical forms of the same point set can still differ in how
            // bands were cut; fall back to an area + mutual-containment check.
            return self.approx_same_pointset(other);
        }
        let mut used = vec![false; other.rects.len()];
        'outer: for a in &self.rects {
            for (i, b) in other.rects.iter().enumerate() {
                if !used[i] && a.approx_eq(b) {
                    used[i] = true;
                    continue 'outer;
                }
            }
            return self.approx_same_pointset(other);
        }
        true
    }

    fn approx_same_pointset(&self, other: &Region) -> bool {
        if (self.area() - other.area()).abs() > GEOM_EPS * (1.0 + self.area()) {
            return false;
        }
        // Every part of self must be fully covered by other's parts by area.
        let covered = |parts: &[Rect], of: &[Rect]| -> bool {
            of.iter().all(|r| {
                let inter: f64 =
                    parts.iter().filter_map(|p| p.intersection(r)).map(|i| i.area()).sum();
                (inter - r.area()).abs() <= 1e-9 * (1.0 + r.area())
            })
        };
        covered(&self.rects, &other.rects) && covered(&other.rects, &self.rects)
    }

    /// Greedily merges parts that share a full common side until fixpoint.
    ///
    /// This is the planner-side analogue of chaining `U` operators: the
    /// number of parts after canonicalization equals the number of `U`
    /// inputs needed to reassemble the stream.
    fn canonicalize(&mut self) {
        loop {
            let mut merged = false;
            'search: for i in 0..self.rects.len() {
                for j in i + 1..self.rects.len() {
                    if let Some(u) = self.rects[i].union_adjacent(&self.rects[j]) {
                        self.rects[i] = u;
                        self.rects.swap_remove(j);
                        merged = true;
                        break 'search;
                    }
                }
            }
            if !merged {
                break;
            }
        }
        // Deterministic order regardless of insertion order.
        self.rects.sort_by(|a, b| {
            (a.y0, a.x0, a.y1, a.x1)
                .partial_cmp(&(b.y0, b.x0, b.y1, b.x1))
                .expect("rect coords are finite")
        });
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.rects.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

impl From<Rect> for Region {
    fn from(rect: Rect) -> Self {
        Region::from_rect(rect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_region() {
        let r = Region::empty();
        assert!(r.is_empty());
        assert_eq!(r.area(), 0.0);
        assert!(r.bounding_box().is_none());
        assert!(!r.contains(0.0, 0.0));
    }

    #[test]
    fn adjacent_parts_merge_into_one() {
        // Two unit squares side by side collapse to one 2x1 rect.
        let r = Region::from_disjoint(vec![
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(1.0, 0.0, 2.0, 1.0),
        ]);
        assert_eq!(r.part_count(), 1);
        assert!(r.parts()[0].approx_eq(&Rect::new(0.0, 0.0, 2.0, 1.0)));
    }

    #[test]
    fn l_shape_stays_two_parts() {
        let r = Region::from_disjoint(vec![
            Rect::new(0.0, 0.0, 2.0, 1.0),
            Rect::new(0.0, 1.0, 1.0, 2.0),
        ]);
        assert_eq!(r.part_count(), 2);
        assert!((r.area() - 3.0).abs() < 1e-12);
        assert!(r.contains(1.5, 0.5));
        assert!(r.contains(0.5, 1.5));
        assert!(!r.contains(1.5, 1.5));
    }

    #[test]
    fn three_cells_in_a_row_merge_transitively() {
        let r = Region::from_disjoint(vec![
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(2.0, 0.0, 3.0, 1.0),
            Rect::new(1.0, 0.0, 2.0, 1.0),
        ]);
        assert_eq!(r.part_count(), 1);
        assert!(r.parts()[0].approx_eq(&Rect::new(0.0, 0.0, 3.0, 1.0)));
    }

    #[test]
    fn square_block_of_cells_merges_fully() {
        // 2x2 block of unit cells -> single 2x2 rect (rows merge, then rows
        // merge vertically).
        let r = Region::from_disjoint(vec![
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(1.0, 0.0, 2.0, 1.0),
            Rect::new(0.0, 1.0, 1.0, 2.0),
            Rect::new(1.0, 1.0, 2.0, 2.0),
        ]);
        assert_eq!(r.part_count(), 1);
        assert!(r.parts()[0].approx_eq(&Rect::new(0.0, 0.0, 2.0, 2.0)));
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_parts_rejected() {
        let _ = Region::from_disjoint(vec![
            Rect::new(0.0, 0.0, 2.0, 2.0),
            Rect::new(1.0, 1.0, 3.0, 3.0),
        ]);
    }

    #[test]
    fn intersect_rect_clips_parts() {
        let r = Region::from_disjoint(vec![
            Rect::new(0.0, 0.0, 2.0, 1.0),
            Rect::new(0.0, 1.0, 1.0, 2.0),
        ]);
        let clipped = r.intersect_rect(&Rect::new(0.5, 0.5, 3.0, 3.0));
        assert!((clipped.area() - (1.5 * 0.5 + 0.5 * 1.0)).abs() < 1e-9);
        let empty = r.intersect_rect(&Rect::new(5.0, 5.0, 6.0, 6.0));
        assert!(empty.is_empty());
    }

    #[test]
    fn union_disjoint_combines_and_merges() {
        let a = Region::from_rect(Rect::new(0.0, 0.0, 1.0, 1.0));
        let b = Region::from_rect(Rect::new(1.0, 0.0, 2.0, 1.0));
        let u = a.union_disjoint(&b);
        assert_eq!(u.part_count(), 1);
        assert!((u.area() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn covers_same_area_is_representation_independent() {
        // Same 2x1 area cut horizontally vs vertically.
        let a = Region::from_disjoint(vec![Rect::new(0.0, 0.0, 1.0, 2.0)]);
        let b = Region::from_disjoint(vec![
            Rect::new(0.0, 0.0, 0.5, 2.0),
            Rect::new(0.5, 0.0, 1.0, 2.0),
        ]);
        assert!(a.covers_same_area(&b));
        let c = Region::from_rect(Rect::new(0.0, 0.0, 1.0, 1.9));
        assert!(!a.covers_same_area(&c));
    }

    #[test]
    fn bounding_box_spans_all_parts() {
        let r = Region::from_disjoint(vec![
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(4.0, 5.0, 6.0, 7.0),
        ]);
        assert!(r.bounding_box().unwrap().approx_eq(&Rect::new(0.0, 0.0, 6.0, 7.0)));
    }

    #[test]
    fn display_formats_union() {
        let r = Region::from_disjoint(vec![
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(4.0, 0.0, 5.0, 1.0),
        ]);
        let s = format!("{r}");
        assert!(s.contains('∪'), "{s}");
    }
}
