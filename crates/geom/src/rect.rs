//! Axis-aligned half-open rectangles.

use crate::{feq, GEOM_EPS};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle `[x0, x1) × [y0, y1)` in kilometres.
///
/// Rectangles are the only region primitive the paper needs: query regions,
/// grid cells, and the operands of the `P`/`U` operators are all rectangles.
/// Half-open extents make a [`crate::Grid`] tile its region exactly: a point
/// on a shared cell edge belongs to exactly one cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Minimum x (inclusive).
    pub x0: f64,
    /// Minimum y (inclusive).
    pub y0: f64,
    /// Maximum x (exclusive).
    pub x1: f64,
    /// Maximum y (exclusive).
    pub y1: f64,
}

impl Rect {
    /// Creates `[x0, x1) × [y0, y1)`.
    ///
    /// # Panics
    /// Panics if the extents are inverted, non-finite, or degenerate
    /// (zero-area rectangles cannot carry a rate and are rejected early).
    #[track_caller]
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        assert!(
            x0.is_finite() && y0.is_finite() && x1.is_finite() && y1.is_finite(),
            "rect extents must be finite"
        );
        assert!(x1 > x0 && y1 > y0, "rect must have positive area: [{x0},{x1})x[{y0},{y1})");
        Self { x0, y0, x1, y1 }
    }

    /// A rectangle anchored at the origin with the given width and height.
    pub fn with_size(width: f64, height: f64) -> Self {
        Self::new(0.0, 0.0, width, height)
    }

    /// Width along x (km).
    #[inline]
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Height along y (km).
    #[inline]
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Area in km² — `area(·)` of the paper's Eq. (2).
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre of the rectangle.
    #[inline]
    pub fn center(&self) -> (f64, f64) {
        ((self.x0 + self.x1) * 0.5, (self.y0 + self.y1) * 0.5)
    }

    /// Half-open containment test.
    #[inline]
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// `true` if `other` lies entirely inside `self` (closure inclusive on
    /// the max edge: a rect *is* contained in itself).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.x0 >= self.x0 - GEOM_EPS
            && other.y0 >= self.y0 - GEOM_EPS
            && other.x1 <= self.x1 + GEOM_EPS
            && other.y1 <= self.y1 + GEOM_EPS
    }

    /// `true` when the interiors overlap (touching edges do not count).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x0 < other.x1 - GEOM_EPS
            && other.x0 < self.x1 - GEOM_EPS
            && self.y0 < other.y1 - GEOM_EPS
            && other.y0 < self.y1 - GEOM_EPS
    }

    /// Intersection rectangle, or `None` when interiors are disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect::new(
            self.x0.max(other.x0),
            self.y0.max(other.y0),
            self.x1.min(other.x1),
            self.y1.min(other.y1),
        ))
    }

    /// Fraction of `self`'s area covered by `other` (0 when disjoint).
    pub fn overlap_fraction(&self, other: &Rect) -> f64 {
        self.intersection(other).map_or(0.0, |i| i.area() / self.area())
    }

    /// The union precondition of the paper's `U` operator: "the rectangles
    /// should be adjacent and with a common side of equal length".
    ///
    /// Returns `true` when `self` and `other` share a *full* common side —
    /// i.e. they abut along x or y and both the offset and length of the
    /// shared side match within [`GEOM_EPS`].
    pub fn shares_full_side(&self, other: &Rect) -> bool {
        let same_y_span = feq(self.y0, other.y0) && feq(self.y1, other.y1);
        let same_x_span = feq(self.x0, other.x0) && feq(self.x1, other.x1);
        let abut_x = feq(self.x1, other.x0) || feq(other.x1, self.x0);
        let abut_y = feq(self.y1, other.y0) || feq(other.y1, self.y0);
        (same_y_span && abut_x) || (same_x_span && abut_y)
    }

    /// Merges two rectangles that satisfy [`Rect::shares_full_side`]; the
    /// result is the exact rectangular union `R?₃ = R?₁ ∪ R?₂`.
    ///
    /// Returns `None` when the precondition fails (the planner treats this as
    /// a planning bug, the operator as a configuration error).
    pub fn union_adjacent(&self, other: &Rect) -> Option<Rect> {
        if !self.shares_full_side(other) {
            return None;
        }
        Some(Rect::new(
            self.x0.min(other.x0),
            self.y0.min(other.y0),
            self.x1.max(other.x1),
            self.y1.max(other.y1),
        ))
    }

    /// Splits this rectangle at `x` into `(left, right)` halves.
    ///
    /// Used by the planner to carve a query's footprint out of a grid cell.
    /// Returns `None` when `x` is not strictly inside the x-extent.
    pub fn split_at_x(&self, x: f64) -> Option<(Rect, Rect)> {
        if x <= self.x0 + GEOM_EPS || x >= self.x1 - GEOM_EPS {
            return None;
        }
        Some((Rect::new(self.x0, self.y0, x, self.y1), Rect::new(x, self.y0, self.x1, self.y1)))
    }

    /// Splits this rectangle at `y` into `(bottom, top)` halves.
    pub fn split_at_y(&self, y: f64) -> Option<(Rect, Rect)> {
        if y <= self.y0 + GEOM_EPS || y >= self.y1 - GEOM_EPS {
            return None;
        }
        Some((Rect::new(self.x0, self.y0, self.x1, y), Rect::new(self.x0, y, self.x1, self.y1)))
    }

    /// Subtracts `other` from `self`, returning the remainder as at most four
    /// disjoint rectangles (a "guillotine" decomposition: bottom, top, left,
    /// right bands). The pieces tile `self \ other` exactly.
    pub fn subtract(&self, other: &Rect) -> Vec<Rect> {
        let Some(hole) = self.intersection(other) else {
            return vec![*self];
        };
        let mut out = Vec::with_capacity(4);
        // Bottom band (full width).
        if hole.y0 > self.y0 + GEOM_EPS {
            out.push(Rect::new(self.x0, self.y0, self.x1, hole.y0));
        }
        // Top band (full width).
        if hole.y1 < self.y1 - GEOM_EPS {
            out.push(Rect::new(self.x0, hole.y1, self.x1, self.y1));
        }
        // Left band (restricted to the hole's y-span).
        if hole.x0 > self.x0 + GEOM_EPS {
            out.push(Rect::new(self.x0, hole.y0, hole.x0, hole.y1));
        }
        // Right band.
        if hole.x1 < self.x1 - GEOM_EPS {
            out.push(Rect::new(hole.x1, hole.y0, self.x1, hole.y1));
        }
        out
    }

    /// Approximate equality within [`GEOM_EPS`] on every edge.
    pub fn approx_eq(&self, other: &Rect) -> bool {
        feq(self.x0, other.x0)
            && feq(self.y0, other.y0)
            && feq(self.x1, other.x1)
            && feq(self.y1, other.y1)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.3},{:.3})x[{:.3},{:.3})", self.x0, self.x1, self.y0, self.y1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Rect {
        Rect::new(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn area_and_size() {
        let r = Rect::new(1.0, 2.0, 4.0, 6.0);
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.center(), (2.5, 4.0));
    }

    #[test]
    #[should_panic(expected = "positive area")]
    fn degenerate_rect_rejected() {
        let _ = Rect::new(0.0, 0.0, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_rect_rejected() {
        let _ = Rect::new(0.0, 0.0, f64::NAN, 1.0);
    }

    #[test]
    fn containment_is_half_open() {
        let r = unit();
        assert!(r.contains(0.0, 0.0));
        assert!(r.contains(0.999_999, 0.999_999));
        assert!(!r.contains(1.0, 0.5));
        assert!(!r.contains(0.5, 1.0));
    }

    #[test]
    fn intersection_of_overlapping_rects() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 3.0, 3.0);
        let i = a.intersection(&b).unwrap();
        assert!(i.approx_eq(&Rect::new(1.0, 1.0, 2.0, 2.0)));
        assert!((a.overlap_fraction(&b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn touching_edges_do_not_intersect() {
        let a = unit();
        let b = Rect::new(1.0, 0.0, 2.0, 1.0);
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_none());
        assert_eq!(a.overlap_fraction(&b), 0.0);
    }

    #[test]
    fn full_side_adjacency_horizontal() {
        let a = unit();
        let b = Rect::new(1.0, 0.0, 2.0, 1.0);
        assert!(a.shares_full_side(&b));
        assert!(b.shares_full_side(&a));
        let u = a.union_adjacent(&b).unwrap();
        assert!(u.approx_eq(&Rect::new(0.0, 0.0, 2.0, 1.0)));
    }

    #[test]
    fn full_side_adjacency_vertical() {
        let a = unit();
        let b = Rect::new(0.0, 1.0, 1.0, 2.0);
        let u = a.union_adjacent(&b).unwrap();
        assert!(u.approx_eq(&Rect::new(0.0, 0.0, 1.0, 2.0)));
    }

    #[test]
    fn partial_side_adjacency_rejected() {
        // Same abutting edge but different lengths: paper's precondition fails.
        let a = unit();
        let b = Rect::new(1.0, 0.0, 2.0, 0.5);
        assert!(!a.shares_full_side(&b));
        assert!(a.union_adjacent(&b).is_none());
    }

    #[test]
    fn diagonal_neighbours_rejected() {
        let a = unit();
        let b = Rect::new(1.0, 1.0, 2.0, 2.0);
        assert!(!a.shares_full_side(&b));
    }

    #[test]
    fn overlapping_rects_are_not_adjacent() {
        let a = unit();
        let b = Rect::new(0.5, 0.0, 1.5, 1.0);
        assert!(!a.shares_full_side(&b));
    }

    #[test]
    fn split_at_x_partitions_area() {
        let r = Rect::new(0.0, 0.0, 4.0, 2.0);
        let (l, rr) = r.split_at_x(1.0).unwrap();
        assert!((l.area() + rr.area() - r.area()).abs() < 1e-12);
        assert!(l.shares_full_side(&rr));
        assert!(r.split_at_x(0.0).is_none());
        assert!(r.split_at_x(4.0).is_none());
    }

    #[test]
    fn split_at_y_partitions_area() {
        let r = Rect::new(0.0, 0.0, 2.0, 4.0);
        let (b, t) = r.split_at_y(3.0).unwrap();
        assert!((b.area() + t.area() - r.area()).abs() < 1e-12);
        assert!(b.shares_full_side(&t));
    }

    #[test]
    fn subtract_disjoint_returns_self() {
        let a = unit();
        let b = Rect::new(5.0, 5.0, 6.0, 6.0);
        assert_eq!(a.subtract(&b), vec![a]);
    }

    #[test]
    fn subtract_contained_hole_yields_four_bands() {
        let outer = Rect::new(0.0, 0.0, 3.0, 3.0);
        let hole = Rect::new(1.0, 1.0, 2.0, 2.0);
        let parts = outer.subtract(&hole);
        assert_eq!(parts.len(), 4);
        let total: f64 = parts.iter().map(Rect::area).sum();
        assert!((total - (outer.area() - hole.area())).abs() < 1e-9);
        // Pieces must be pairwise disjoint and not cover the hole.
        for (i, p) in parts.iter().enumerate() {
            assert!(!p.intersects(&hole));
            for q in &parts[i + 1..] {
                assert!(!p.intersects(q), "{p} intersects {q}");
            }
        }
    }

    #[test]
    fn subtract_corner_overlap() {
        let outer = unit();
        let bite = Rect::new(0.5, 0.5, 2.0, 2.0);
        let parts = outer.subtract(&bite);
        let total: f64 = parts.iter().map(Rect::area).sum();
        assert!((total - 0.75).abs() < 1e-9);
    }

    #[test]
    fn subtract_covering_rect_yields_empty() {
        let inner = unit();
        let cover = Rect::new(-1.0, -1.0, 2.0, 2.0);
        assert!(inner.subtract(&cover).is_empty());
    }
}
