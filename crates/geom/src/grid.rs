//! The `√h × √h` logical grid of Section IV.

use crate::{Rect, GEOM_EPS};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of the grid cell `R(q,r)`.
///
/// `q` indexes columns (x axis) and `r` rows (y axis), both 0-based; the
/// paper's Fig. 2 uses 1-based `(q, r)` labels, a pure display convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId {
    /// Column index along x.
    pub q: u32,
    /// Row index along y.
    pub r: u32,
}

impl CellId {
    /// Creates a cell id `(q, r)`.
    #[inline]
    pub fn new(q: u32, r: u32) -> Self {
        Self { q, r }
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.q, self.r)
    }
}

/// A cell intersected by a query region: the overlap geometry the planner
/// uses to decide whether a `P`-operator is needed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellOverlap {
    /// Which cell.
    pub cell: CellId,
    /// The intersection of the query region with the cell.
    pub overlap: Rect,
    /// `overlap.area() / cell.area()` in `(0, 1]`.
    pub fraction: f64,
    /// `true` when the query covers the whole cell (no `P`-operator needed,
    /// as for Q⟨1⟩₁ and Q⟨2⟩₂ in the paper's example).
    pub full: bool,
}

/// The logical partitioning of the region `R` into a `√h × √h` grid of
/// equal-size cells (Section IV).
///
/// The grid is *logical*: it stores no per-cell state. "Only the grid cells
/// that are useful for query processing are materialized" — materialization
/// is the planner's hashmap (`craqr-core`), keyed by [`CellId`]; this type
/// merely answers geometric questions:
///
/// - which cell a tuple falls in ([`Grid::cell_of`], the *map* phase of
///   Fig. 2a), and
/// - which cells a query region overlaps and by how much
///   ([`Grid::cells_overlapping`], used at query insertion).
///
/// Eq. (2) — `area(R) = Σ area(R(q,r))` — holds by construction and is
/// enforced by tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    region: Rect,
    side: u32,
    cell_w: f64,
    cell_h: f64,
}

impl Grid {
    /// Creates a grid with `side × side` cells over `region`.
    ///
    /// `side` is the paper's `√h`; the user-chosen `h = side²` controls "the
    /// granularity at which queries can be processed".
    ///
    /// # Panics
    /// Panics when `side == 0`.
    #[track_caller]
    pub fn new(region: Rect, side: u32) -> Self {
        assert!(side > 0, "grid needs at least one cell per side");
        Self {
            region,
            side,
            cell_w: region.width() / side as f64,
            cell_h: region.height() / side as f64,
        }
    }

    /// Creates a grid from the paper's `h` parameter (total cell count).
    ///
    /// # Panics
    /// Panics when `h` is not a positive perfect square.
    #[track_caller]
    pub fn with_cell_count(region: Rect, h: u32) -> Self {
        let side = (h as f64).sqrt().round() as u32;
        assert!(side > 0 && side * side == h, "h={h} must be a positive perfect square");
        Self::new(region, side)
    }

    /// The full region `R`.
    #[inline]
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Cells per side (`√h`).
    #[inline]
    pub fn side(&self) -> u32 {
        self.side
    }

    /// Total number of cells (`h`).
    #[inline]
    pub fn cell_count(&self) -> u32 {
        self.side * self.side
    }

    /// Area of one cell; all cells are equal size, which is why the paper's
    /// budget "does not need a spatial component".
    #[inline]
    pub fn cell_area(&self) -> f64 {
        self.cell_w * self.cell_h
    }

    /// The rectangle of cell `R(q,r)`.
    ///
    /// # Panics
    /// Panics when the id is out of range.
    #[track_caller]
    pub fn cell_rect(&self, id: CellId) -> Rect {
        assert!(
            id.q < self.side && id.r < self.side,
            "cell {id} out of range for side {}",
            self.side
        );
        let x0 = self.region.x0 + self.cell_w * id.q as f64;
        let y0 = self.region.y0 + self.cell_h * id.r as f64;
        // Anchor the max edge of the last row/column to the region edge so
        // the cells tile R exactly despite floating-point division.
        let x1 = if id.q + 1 == self.side { self.region.x1 } else { x0 + self.cell_w };
        let y1 = if id.r + 1 == self.side { self.region.y1 } else { y0 + self.cell_h };
        Rect::new(x0, y0, x1, y1)
    }

    /// The cell containing `(x, y)`, or `None` when the point is outside `R`.
    ///
    /// This is the *map* step of Fig. 2(a): every arriving tuple is assigned
    /// to its hashmap key.
    pub fn cell_of(&self, x: f64, y: f64) -> Option<CellId> {
        if !self.region.contains(x, y) {
            return None;
        }
        let q = (((x - self.region.x0) / self.cell_w) as u32).min(self.side - 1);
        let r = (((y - self.region.y0) / self.cell_h) as u32).min(self.side - 1);
        Some(CellId::new(q, r))
    }

    /// Iterates over all cell ids in row-major order.
    pub fn all_cells(&self) -> impl Iterator<Item = CellId> + '_ {
        let side = self.side;
        (0..side).flat_map(move |r| (0..side).map(move |q| CellId::new(q, r)))
    }

    /// Every cell whose interior overlaps `query`, with the overlap geometry.
    ///
    /// This is the first step of query insertion (Section V): "for a given
    /// query region, we compute the amount of overlap that it has with each
    /// grid cell". The scan is restricted to the cell-index bounding box of
    /// the query, so cost is proportional to the number of touched cells,
    /// not `h`.
    pub fn cells_overlapping(&self, query: &Rect) -> Vec<CellOverlap> {
        let Some(clipped) = self.region.intersection(query) else {
            return Vec::new();
        };
        let q0 = (((clipped.x0 - self.region.x0) / self.cell_w) as u32).min(self.side - 1);
        let r0 = (((clipped.y0 - self.region.y0) / self.cell_h) as u32).min(self.side - 1);
        let q1 =
            (((clipped.x1 - self.region.x0 - GEOM_EPS) / self.cell_w) as u32).min(self.side - 1);
        let r1 =
            (((clipped.y1 - self.region.y0 - GEOM_EPS) / self.cell_h) as u32).min(self.side - 1);
        let mut out = Vec::with_capacity(((q1 - q0 + 1) * (r1 - r0 + 1)) as usize);
        for r in r0..=r1 {
            for q in q0..=q1 {
                let cell = CellId::new(q, r);
                let rect = self.cell_rect(cell);
                if let Some(overlap) = rect.intersection(query) {
                    let fraction = overlap.area() / rect.area();
                    out.push(CellOverlap {
                        cell,
                        overlap,
                        fraction,
                        full: overlap.approx_eq(&rect) || fraction >= 1.0 - 1e-12,
                    });
                }
            }
        }
        out
    }

    /// `true` when `query`'s area is at least one cell's area — the paper's
    /// minimum-query-size rule ("a single-attribute query should be on a
    /// region with area at least `area(R(q,r))`").
    pub fn query_large_enough(&self, query: &Rect) -> bool {
        query.area() + GEOM_EPS >= self.cell_area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid3() -> Grid {
        Grid::new(Rect::new(0.0, 0.0, 3.0, 3.0), 3)
    }

    #[test]
    fn eq2_cell_areas_sum_to_region_area() {
        let g = Grid::new(Rect::new(-1.0, 2.0, 5.0, 9.0), 7);
        let total: f64 = g.all_cells().map(|c| g.cell_rect(c).area()).sum();
        assert!((total - g.region().area()).abs() < 1e-9, "Eq. (2) violated");
    }

    #[test]
    fn with_cell_count_requires_perfect_square() {
        let g = Grid::with_cell_count(Rect::with_size(2.0, 2.0), 16);
        assert_eq!(g.side(), 4);
        assert_eq!(g.cell_count(), 16);
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn non_square_h_rejected() {
        let _ = Grid::with_cell_count(Rect::with_size(1.0, 1.0), 10);
    }

    #[test]
    fn cell_rects_tile_without_overlap() {
        let g = grid3();
        let cells: Vec<Rect> = g.all_cells().map(|c| g.cell_rect(c)).collect();
        for (i, a) in cells.iter().enumerate() {
            for b in &cells[i + 1..] {
                assert!(!a.intersects(b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn cell_of_maps_points_to_owning_cell() {
        let g = grid3();
        assert_eq!(g.cell_of(0.5, 0.5), Some(CellId::new(0, 0)));
        assert_eq!(g.cell_of(2.5, 0.5), Some(CellId::new(2, 0)));
        assert_eq!(g.cell_of(0.5, 2.5), Some(CellId::new(0, 2)));
        // Boundary points belong to the cell on the high side (half-open).
        assert_eq!(g.cell_of(1.0, 1.0), Some(CellId::new(1, 1)));
        // Outside the region.
        assert_eq!(g.cell_of(3.0, 1.0), None);
        assert_eq!(g.cell_of(-0.001, 1.0), None);
    }

    #[test]
    fn cell_of_agrees_with_cell_rect() {
        let g = Grid::new(Rect::new(-2.0, 1.0, 7.0, 4.0), 5);
        for c in g.all_cells() {
            let rect = g.cell_rect(c);
            let (cx, cy) = rect.center();
            assert_eq!(g.cell_of(cx, cy), Some(c));
            assert_eq!(g.cell_of(rect.x0, rect.y0), Some(c), "min corner owns its cell");
        }
    }

    #[test]
    fn overlap_with_fully_contained_query() {
        let g = grid3();
        // Query exactly covering cell (1,1).
        let o = g.cells_overlapping(&Rect::new(1.0, 1.0, 2.0, 2.0));
        assert_eq!(o.len(), 1);
        assert_eq!(o[0].cell, CellId::new(1, 1));
        assert!(o[0].full);
        assert!((o[0].fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_with_partial_query() {
        let g = grid3();
        // Query covering the left half of cells (0,0) and (0,1).
        let o = g.cells_overlapping(&Rect::new(0.0, 0.0, 0.5, 2.0));
        assert_eq!(o.len(), 2);
        for co in &o {
            assert!(!co.full);
            assert!((co.fraction - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn overlap_spanning_multiple_cells_mixes_full_and_partial() {
        let g = grid3();
        // 1.5 x 1 query: covers cell (0,0) fully? No: x in [0,1.5) covers
        // (0,0) fully in x? cell (0,0) is [0,1)x[0,1): yes full; (1,0) half.
        let o = g.cells_overlapping(&Rect::new(0.0, 0.0, 1.5, 1.0));
        assert_eq!(o.len(), 2);
        let full: Vec<_> = o.iter().filter(|c| c.full).collect();
        let partial: Vec<_> = o.iter().filter(|c| !c.full).collect();
        assert_eq!(full.len(), 1);
        assert_eq!(full[0].cell, CellId::new(0, 0));
        assert_eq!(partial.len(), 1);
        assert_eq!(partial[0].cell, CellId::new(1, 0));
        assert!((partial[0].fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_areas_sum_to_clipped_query_area() {
        let g = grid3();
        let query = Rect::new(0.3, 0.7, 2.6, 2.9);
        let total: f64 = g.cells_overlapping(&query).iter().map(|c| c.overlap.area()).sum();
        assert!((total - query.area()).abs() < 1e-9);
    }

    #[test]
    fn query_outside_region_touches_nothing() {
        let g = grid3();
        assert!(g.cells_overlapping(&Rect::new(10.0, 10.0, 11.0, 11.0)).is_empty());
    }

    #[test]
    fn query_partially_outside_is_clipped() {
        let g = grid3();
        let total: f64 = g
            .cells_overlapping(&Rect::new(2.5, 2.5, 9.0, 9.0))
            .iter()
            .map(|c| c.overlap.area())
            .sum();
        assert!((total - 0.25).abs() < 1e-9);
    }

    #[test]
    fn minimum_query_size_rule() {
        let g = grid3();
        assert!(g.query_large_enough(&Rect::new(0.0, 0.0, 1.0, 1.0)));
        assert!(g.query_large_enough(&Rect::new(0.0, 0.0, 2.0, 0.5)));
        assert!(!g.query_large_enough(&Rect::new(0.0, 0.0, 0.5, 0.5)));
    }

    #[test]
    fn single_cell_grid() {
        let g = Grid::new(Rect::with_size(4.0, 4.0), 1);
        assert_eq!(g.cell_count(), 1);
        assert_eq!(g.cell_of(3.9, 3.9), Some(CellId::new(0, 0)));
        let o = g.cells_overlapping(&Rect::new(1.0, 1.0, 2.0, 2.0));
        assert_eq!(o.len(), 1);
        assert!(!o[0].full);
    }
}
