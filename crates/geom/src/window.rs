//! Space-time observation windows.

use crate::{Rect, SpaceTimePoint};
use serde::{Deserialize, Serialize};

/// A rectangle extruded over a half-open time interval `[t0, t1)`.
///
/// A 3-D MDPP with rate `λ` observed in a window `W` yields
/// `Poisson(λ · volume(W))` points, where `volume = area(rect) · (t1 − t0)`
/// in km²·min. Windows therefore appear wherever the paper speaks of a rate
/// "per unit area and time": process sampling, rate estimation, the
/// flatten/thin correctness checks, and the fabricator's batch boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpaceTimeWindow {
    /// Spatial footprint.
    pub rect: Rect,
    /// Start time (inclusive, minutes).
    pub t0: f64,
    /// End time (exclusive, minutes).
    pub t1: f64,
}

impl SpaceTimeWindow {
    /// Creates a window over `rect` during `[t0, t1)`.
    ///
    /// # Panics
    /// Panics when the time interval is empty or non-finite.
    #[track_caller]
    pub fn new(rect: Rect, t0: f64, t1: f64) -> Self {
        assert!(t0.is_finite() && t1.is_finite(), "window times must be finite");
        assert!(t1 > t0, "window must have positive duration: [{t0},{t1})");
        Self { rect, t0, t1 }
    }

    /// Duration in minutes.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.t1 - self.t0
    }

    /// Volume in km²·min — the normalizer of every spatio-temporal rate.
    #[inline]
    pub fn volume(&self) -> f64 {
        self.rect.area() * self.duration()
    }

    /// Half-open containment of a space-time point.
    #[inline]
    pub fn contains(&self, p: &SpaceTimePoint) -> bool {
        p.t >= self.t0 && p.t < self.t1 && self.rect.contains(p.x, p.y)
    }

    /// The empirical rate (points / km² / min) of `n` points in this window.
    #[inline]
    pub fn empirical_rate(&self, n: usize) -> f64 {
        n as f64 / self.volume()
    }

    /// Restricts the window to a smaller spatial footprint.
    ///
    /// Returns `None` when `rect` does not overlap the window's footprint.
    pub fn restricted_to(&self, rect: &Rect) -> Option<SpaceTimeWindow> {
        self.rect.intersection(rect).map(|r| SpaceTimeWindow::new(r, self.t0, self.t1))
    }

    /// Splits the window into `n` equal consecutive time slices.
    ///
    /// Used by homogeneity diagnostics to bin counts over time.
    pub fn time_slices(&self, n: usize) -> Vec<SpaceTimeWindow> {
        assert!(n > 0, "need at least one slice");
        let dt = self.duration() / n as f64;
        (0..n)
            .map(|i| {
                let a = self.t0 + dt * i as f64;
                // Compute the right edge from the window end for the last
                // slice so the slices tile [t0, t1) exactly.
                let b = if i + 1 == n { self.t1 } else { self.t0 + dt * (i + 1) as f64 };
                SpaceTimeWindow::new(self.rect, a, b)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> SpaceTimeWindow {
        SpaceTimeWindow::new(Rect::new(0.0, 0.0, 2.0, 3.0), 10.0, 20.0)
    }

    #[test]
    fn volume_is_area_times_duration() {
        assert!((w().volume() - 60.0).abs() < 1e-12);
        assert_eq!(w().duration(), 10.0);
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn empty_interval_rejected() {
        let _ = SpaceTimeWindow::new(Rect::with_size(1.0, 1.0), 5.0, 5.0);
    }

    #[test]
    fn containment_checks_space_and_time() {
        let win = w();
        assert!(win.contains(&SpaceTimePoint::new(10.0, 0.0, 0.0)));
        assert!(win.contains(&SpaceTimePoint::new(19.999, 1.9, 2.9)));
        assert!(!win.contains(&SpaceTimePoint::new(20.0, 1.0, 1.0)), "t1 exclusive");
        assert!(!win.contains(&SpaceTimePoint::new(9.999, 1.0, 1.0)));
        assert!(!win.contains(&SpaceTimePoint::new(15.0, 2.0, 1.0)), "x1 exclusive");
    }

    #[test]
    fn empirical_rate_normalizes_by_volume() {
        assert!((w().empirical_rate(120) - 2.0).abs() < 1e-12);
        assert_eq!(w().empirical_rate(0), 0.0);
    }

    #[test]
    fn restriction_intersects_footprint() {
        let win = w();
        let r = win.restricted_to(&Rect::new(1.0, 1.0, 5.0, 5.0)).unwrap();
        assert!(r.rect.approx_eq(&Rect::new(1.0, 1.0, 2.0, 3.0)));
        assert_eq!(r.t0, win.t0);
        assert!(win.restricted_to(&Rect::new(10.0, 10.0, 11.0, 11.0)).is_none());
    }

    #[test]
    fn time_slices_tile_the_window() {
        let slices = w().time_slices(7);
        assert_eq!(slices.len(), 7);
        assert_eq!(slices[0].t0, 10.0);
        assert_eq!(slices[6].t1, 20.0);
        for pair in slices.windows(2) {
            assert!((pair[0].t1 - pair[1].t0).abs() < 1e-12);
        }
        let total: f64 = slices.iter().map(SpaceTimeWindow::duration).sum();
        assert!((total - 10.0).abs() < 1e-12);
    }
}
