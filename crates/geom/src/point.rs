//! Space-time coordinates of crowdsensed tuples.

use serde::{Deserialize, Serialize};

/// The space-time coordinates `(t, x, y)` of a crowdsensed tuple.
///
/// The paper models each attribute's arrivals as a 3-D point process over the
/// dimensions time × x × y (Section III-A); a tuple of attribute `A⟨j⟩` is
/// `(t⟨j⟩ᵢ, x⟨j⟩ᵢ, y⟨j⟩ᵢ, a⟨j⟩ᵢ)` and this struct carries its first three
/// entries. Units are minutes for `t` and kilometres for `x`/`y` throughout
/// the workspace, matching the paper's example rate of `10 /km²/min`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpaceTimePoint {
    /// Time coordinate (minutes since the start of the stream).
    pub t: f64,
    /// Easting (kilometres).
    pub x: f64,
    /// Northing (kilometres).
    pub y: f64,
}

impl SpaceTimePoint {
    /// Creates a point at `(t, x, y)`.
    #[inline]
    pub fn new(t: f64, x: f64, y: f64) -> Self {
        Self { t, x, y }
    }

    /// Euclidean distance in the spatial plane, ignoring time.
    #[inline]
    pub fn spatial_distance(&self, other: &Self) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Returns the point translated by `(dt, dx, dy)`.
    #[inline]
    pub fn translated(&self, dt: f64, dx: f64, dy: f64) -> Self {
        Self::new(self.t + dt, self.x + dx, self.y + dy)
    }

    /// `true` when all three coordinates are finite.
    ///
    /// Malformed GPS fixes (the error sources of Section VI) can produce
    /// NaN/∞ after arithmetic; the fabricator rejects such tuples up front.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.t.is_finite() && self.x.is_finite() && self.y.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_distance_is_euclidean() {
        let a = SpaceTimePoint::new(0.0, 0.0, 0.0);
        let b = SpaceTimePoint::new(99.0, 3.0, 4.0);
        assert!((a.spatial_distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = SpaceTimePoint::new(1.0, -2.0, 7.5);
        let b = SpaceTimePoint::new(2.0, 4.0, -1.0);
        assert_eq!(a.spatial_distance(&b), b.spatial_distance(&a));
    }

    #[test]
    fn translation_moves_all_axes() {
        let p = SpaceTimePoint::new(1.0, 2.0, 3.0).translated(0.5, -1.0, 2.0);
        assert_eq!(p, SpaceTimePoint::new(1.5, 1.0, 5.0));
    }

    #[test]
    fn finiteness_check_rejects_nan_and_inf() {
        assert!(SpaceTimePoint::new(0.0, 0.0, 0.0).is_finite());
        assert!(!SpaceTimePoint::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!SpaceTimePoint::new(0.0, f64::INFINITY, 0.0).is_finite());
        assert!(!SpaceTimePoint::new(0.0, 0.0, f64::NEG_INFINITY).is_finite());
    }
}
