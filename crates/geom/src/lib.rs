//! Spatial substrate for CrAQR.
//!
//! The paper ("On Crowdsensed Data Acquisition using Multi-Dimensional Point
//! Processes", ICDE Workshops 2015) works over a geographical region `R`
//! partitioned into a `√h × √h` logical grid of equal-sized cells `R(q,r)`.
//! Queries name axis-aligned rectangular sub-regions `R' ⊆ R`, the
//! `P`(artition) operator routes tuples into disjoint sub-regions, and the
//! `U`(nion) operator merges streams over *adjacent rectangles sharing a full
//! common side* (Section IV-B).
//!
//! This crate provides exactly that spatial vocabulary:
//!
//! - [`SpaceTimePoint`]: the `(t, x, y)` coordinates of a crowdsensed tuple.
//! - [`Rect`]: half-open axis-aligned rectangles with intersection, overlap
//!   and side-adjacency tests (the precondition of the `U` operator).
//! - [`SpaceTimeWindow`]: a rectangle extruded over a time interval; its
//!   volume is the denominator of every rate computation (`/km²/min`).
//! - [`Grid`]: the `√h × √h` logical partitioning of `R` with lazily
//!   enumerated cells and query-overlap computation (Section IV, Eq. (2)).
//! - [`Region`]: a canonicalized union of disjoint rectangles — the shape of
//!   a query footprint after it is intersected with grid cells.
//!
//! All coordinates are `f64`. Rectangles are half-open (`[x0, x1) × [y0, y1)`)
//! so that a grid tiles the plane without double-counting boundary points.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod grid;
mod point;
mod rect;
mod region;
mod window;

pub use grid::{CellId, CellOverlap, Grid};
pub use point::SpaceTimePoint;
pub use rect::Rect;
pub use region::Region;
pub use window::SpaceTimeWindow;

/// Tolerance used for geometric float comparisons (adjacency, equal sides).
///
/// Coordinates in CrAQR are kilometres and minutes at city scale (magnitudes
/// `1e-3..1e4`), so a fixed absolute epsilon is appropriate.
pub const GEOM_EPS: f64 = 1e-9;

/// Returns `true` when two floats are equal within [`GEOM_EPS`].
#[inline]
pub fn feq(a: f64, b: f64) -> bool {
    (a - b).abs() <= GEOM_EPS
}
