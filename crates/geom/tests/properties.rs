//! Property-based tests for the spatial substrate.
//!
//! These pin down the algebraic laws the planner relies on: grids tile their
//! region, overlap decompositions conserve area, and `subtract`/`union` are
//! mutually inverse where defined.

use craqr_geom::{Grid, Rect, Region};
use proptest::prelude::*;

/// Strategy for a well-formed rectangle with coordinates in [-50, 50].
fn rect_strategy() -> impl Strategy<Value = Rect> {
    (-50.0f64..50.0, -50.0f64..50.0, 0.1f64..40.0, 0.1f64..40.0)
        .prop_map(|(x0, y0, w, h)| Rect::new(x0, y0, x0 + w, y0 + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn intersection_is_commutative(a in rect_strategy(), b in rect_strategy()) {
        match (a.intersection(&b), b.intersection(&a)) {
            (Some(x), Some(y)) => prop_assert!(x.approx_eq(&y)),
            (None, None) => {}
            _ => prop_assert!(false, "intersection not symmetric"),
        }
    }

    #[test]
    fn intersection_contained_in_both(a in rect_strategy(), b in rect_strategy()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert!(i.area() <= a.area() + 1e-9);
            prop_assert!(i.area() <= b.area() + 1e-9);
        }
    }

    #[test]
    fn subtract_conserves_area(a in rect_strategy(), b in rect_strategy()) {
        let parts = a.subtract(&b);
        let hole = a.intersection(&b).map_or(0.0, |i| i.area());
        let total: f64 = parts.iter().map(Rect::area).sum();
        prop_assert!((total - (a.area() - hole)).abs() < 1e-6 * (1.0 + a.area()));
        // Pieces are disjoint from the hole and from each other.
        for (i, p) in parts.iter().enumerate() {
            prop_assert!(!p.intersects(&b));
            for q in &parts[i + 1..] {
                prop_assert!(!p.intersects(q));
            }
        }
    }

    #[test]
    fn union_adjacent_inverts_split(r in rect_strategy(), frac in 0.1f64..0.9) {
        let x = r.x0 + r.width() * frac;
        if let Some((l, right)) = r.split_at_x(x) {
            let u = l.union_adjacent(&right).expect("halves share a side");
            prop_assert!(u.approx_eq(&r));
        }
        let y = r.y0 + r.height() * frac;
        if let Some((b, t)) = r.split_at_y(y) {
            let u = b.union_adjacent(&t).expect("halves share a side");
            prop_assert!(u.approx_eq(&r));
        }
    }

    #[test]
    fn grid_cells_partition_points(
        side in 1u32..8,
        px in 0.0f64..0.999,
        py in 0.0f64..0.999,
    ) {
        let region = Rect::new(0.0, 0.0, 10.0, 10.0);
        let g = Grid::new(region, side);
        let (x, y) = (px * 10.0, py * 10.0);
        let cell = g.cell_of(x, y).expect("point inside region");
        prop_assert!(g.cell_rect(cell).contains(x, y));
        // No other cell contains it.
        let owners = g.all_cells().filter(|c| g.cell_rect(*c).contains(x, y)).count();
        prop_assert_eq!(owners, 1);
    }

    #[test]
    fn grid_overlaps_conserve_query_area(
        side in 1u32..7,
        x0 in 0.0f64..8.0,
        y0 in 0.0f64..8.0,
        w in 0.2f64..5.0,
        h in 0.2f64..5.0,
    ) {
        let region = Rect::new(0.0, 0.0, 10.0, 10.0);
        let g = Grid::new(region, side);
        let query = Rect::new(x0, y0, (x0 + w).min(10.0 - 1e-6), (y0 + h).min(10.0 - 1e-6));
        let overlaps = g.cells_overlapping(&query);
        let total: f64 = overlaps.iter().map(|o| o.overlap.area()).sum();
        prop_assert!((total - query.area()).abs() < 1e-6 * (1.0 + query.area()));
        // Each overlap lies inside its cell.
        for o in &overlaps {
            prop_assert!(g.cell_rect(o.cell).contains_rect(&o.overlap));
            prop_assert!(o.fraction > 0.0 && o.fraction <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn region_from_grid_overlaps_reassembles_query(
        side in 1u32..6,
        x0 in 0.5f64..4.0,
        y0 in 0.5f64..4.0,
        w in 1.0f64..5.0,
        h in 1.0f64..5.0,
    ) {
        let g = Grid::new(Rect::new(0.0, 0.0, 10.0, 10.0), side);
        let query = Rect::new(x0, y0, x0 + w, y0 + h);
        let parts: Vec<Rect> = g.cells_overlapping(&query).into_iter().map(|o| o.overlap).collect();
        let region = Region::from_disjoint(parts);
        prop_assert!(region.covers_same_area(&Region::from_rect(query)));
    }
}
