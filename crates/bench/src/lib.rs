//! Shared infrastructure for the CrAQR experiment harness.
//!
//! Every bench target under `benches/` is a `harness = false` binary run by
//! `cargo bench`; it prints the experiment's table/series in markdown so
//! `bench_output.txt` regenerates the full evaluation (see
//! `EXPERIMENTS.md`).

use craqr_core::tuple::CrowdTuple;
use craqr_geom::{SpaceTimePoint, SpaceTimeWindow};
use craqr_mdpp::intensity::IntensityModel;
use craqr_mdpp::process::InhomogeneousMdpp;
use craqr_sensing::{AttrValue, AttributeId, SensorId};
use rand::rngs::StdRng;

/// A minimal markdown table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Prints the table with a title, markdown-style.
    pub fn print(&self, title: &str) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        println!("\n### {title}\n");
        let fmt_row = |cells: &[String]| {
            let body: Vec<String> =
                cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
            format!("| {} |", body.join(" | "))
        };
        println!("{}", fmt_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }
}

/// Formats a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Samples an inhomogeneous process and wraps the points as tuples of
/// `attr` — the standard synthetic ingestion batch.
pub fn synth_batch<I: IntensityModel>(
    process: &InhomogeneousMdpp<I>,
    window: &SpaceTimeWindow,
    attr: AttributeId,
    id_base: u64,
    rng: &mut StdRng,
) -> Vec<CrowdTuple> {
    process
        .sample(window, rng)
        .into_iter()
        .enumerate()
        .map(|(i, p)| CrowdTuple {
            id: id_base + i as u64,
            attr,
            point: p,
            value: AttrValue::Float(0.0),
            sensor: SensorId(0),
        })
        .collect()
}

/// Wraps raw points as tuples.
pub fn tuples_from_points(points: &[SpaceTimePoint], attr: AttributeId) -> Vec<CrowdTuple> {
    points
        .iter()
        .enumerate()
        .map(|(i, p)| CrowdTuple {
            id: i as u64,
            attr,
            point: *p,
            value: AttrValue::Bool(true),
            sensor: SensorId(0),
        })
        .collect()
}

/// Empirical rate of a tuple stream over a window footprint.
pub fn empirical_rate(n: usize, area: f64, minutes: f64) -> f64 {
    n as f64 / (area * minutes)
}

/// The standard experiment preamble: experiment id, claim, setup.
pub fn preamble(id: &str, claim: &str, setup: &str) {
    println!("\n==================================================================");
    println!("{id}: {claim}");
    println!("setup: {setup}");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]).row(["333", "4"]);
        t.print("demo");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn rate_helper() {
        assert!((empirical_rate(100, 4.0, 25.0) - 1.0).abs() < 1e-12);
    }
}
