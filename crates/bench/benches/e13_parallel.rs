//! E13 — sharded epoch executor scaling on a multi-cell workload.
//!
//! Claim under test: per-cell topologies share nothing, so partitioning
//! the materialized chains over a worker pool scales the process phase
//! with the shard count while staying bit-identical to serial execution
//! (the `tests/sharded_exec.rs` determinism contract).
//!
//! Workload: an 8×8 grid (64 materialized chains), three standing
//! whole-region queries at descending rates (so every cell runs
//! `F → T → T → T`), fed by a hotspot-skewed inhomogeneous stream — the
//! skew is what makes round-robin shard balance non-trivial. The same
//! pre-generated batches drive every mode.
//!
//! Two metrics per mode:
//!
//! - **wall**: end-to-end epoch wall-clock on *this* host. Parallel gains
//!   appear only when the host has idle cores (single-core CI boxes show
//!   ≈1×: Amdahl, not a regression).
//! - **critical path**: the busiest shard's processing time, measured
//!   inside the executor — the epoch time a host with ≥ shards idle cores
//!   would observe. `work / critical-path` is the scheduling-quality
//!   speedup the shard plan achieves; this is the acceptance metric for
//!   shard scaling because it is host-independent.
//!
//! Writes `BENCH_parallel.json` at the repo root with both metrics for
//! 1/2/4 shards. Run with `--test` for a one-epoch smoke pass.

use craqr_bench::{f3, preamble, synth_batch, Table};
use craqr_core::exec::ExecMode;
use craqr_core::plan::PlannerConfig;
use craqr_core::{AcquisitionQuery, CrowdTuple, Fabricator};
use craqr_geom::{Rect, SpaceTimeWindow};
use craqr_mdpp::intensity::{Bump, GaussianBumpIntensity, IntegralCache};
use craqr_mdpp::process::InhomogeneousMdpp;
use craqr_sensing::AttributeId;
use craqr_stats::seeded_rng;
use std::time::Instant;

const ATTR: AttributeId = AttributeId(0);
const REGION_KM: f64 = 8.0;
const GRID_SIDE: u32 = 8;
const BATCH_MINUTES: f64 = 5.0;

fn region() -> Rect {
    Rect::with_size(REGION_KM, REGION_KM)
}

fn fabricator(seed: u64) -> Fabricator {
    let mut fab = Fabricator::new(
        region(),
        PlannerConfig {
            grid_side: GRID_SIDE,
            batch_duration: BATCH_MINUTES,
            seed,
            ..Default::default()
        },
    );
    for rate in [2.0, 1.0, 0.5] {
        fab.insert_query(AcquisitionQuery::new(ATTR, region(), rate)).unwrap();
    }
    fab
}

/// Pre-generates every epoch's raw batch from a hotspot-skewed process,
/// sizing expectations through the integral cache (the bump intensity has
/// no closed-form integral; without the cache each epoch would re-run
/// 32³-probe quadrature for the same sliding window).
fn make_batches(epochs: usize) -> (Vec<Vec<CrowdTuple>>, f64, (u64, u64)) {
    let truth = GaussianBumpIntensity::new(
        12.0,
        vec![
            Bump { cx: 2.0, cy: 2.0, amplitude: 80.0, sigma: 1.1 },
            Bump { cx: 6.5, cy: 5.5, amplitude: 50.0, sigma: 0.9 },
        ],
    );
    let process = InhomogeneousMdpp::new(truth, region());
    let mut rng = seeded_rng(501);
    let mut cache = IntegralCache::new();
    let mut expected = 0.0;
    let mut batches = Vec::with_capacity(epochs);
    let mut id_base = 0u64;
    for e in 0..epochs {
        let w = SpaceTimeWindow::new(
            region(),
            e as f64 * BATCH_MINUTES,
            (e + 1) as f64 * BATCH_MINUTES,
        );
        expected += process.expected_count_cached(&w, &mut cache, 0);
        let batch = synth_batch(&process, &w, ATTR, id_base, &mut rng);
        id_base += batch.len() as u64;
        batches.push(batch);
    }
    (batches, expected / epochs as f64, cache.stats())
}

struct ModeResult {
    label: String,
    shards: usize,
    wall_s: f64,
    work_s: f64,
    critical_path_s: f64,
    delivered: usize,
    first_ids: Vec<u64>,
}

/// Drives every pre-generated batch through a fresh fabricator under one
/// execution mode, returning wall/work/critical-path times and the
/// delivered stream fingerprint (for cross-mode identity checks).
fn run_mode(label: &str, mode: ExecMode, batches: &[Vec<CrowdTuple>]) -> ModeResult {
    let mut fab = fabricator(9);
    let mut work_ns = 0u64;
    let mut critical_ns = 0u64;
    let mut delivered = Vec::new();
    let started = Instant::now();
    for batch in batches {
        let report = fab.ingest_batch_mode(batch, mode);
        work_ns += report.work_ns();
        critical_ns += report.critical_path_ns();
        for qid in fab.query_ids() {
            delivered.extend(fab.collect_output(qid).unwrap());
        }
    }
    let wall_s = started.elapsed().as_secs_f64();
    ModeResult {
        label: label.to_string(),
        shards: mode.shards(),
        wall_s,
        work_s: work_ns as f64 / 1e9,
        critical_path_s: critical_ns as f64 / 1e9,
        delivered: delivered.len(),
        first_ids: delivered.iter().take(64).map(|t| t.id).collect(),
    }
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let epochs = if test_mode { 2 } else { 12 };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    preamble(
        "E13 (sharded epoch executor)",
        "share-nothing per-cell chains scale with the shard count; serial and sharded runs are bit-identical",
        "8×8 grid, 64 F→T→T→T chains, hotspot-skewed stream, identical batches per mode",
    );

    let (batches, expected_per_epoch, (cache_hits, cache_misses)) = make_batches(epochs);
    let mean_batch = batches.iter().map(Vec::len).sum::<usize>() as f64 / epochs as f64;
    println!(
        "\n{epochs} epochs, mean batch {mean_batch:.0} tuples (expected {expected_per_epoch:.0}); \
         integral cache {cache_hits} hits / {cache_misses} misses; host cpus {host_cpus}"
    );

    let modes = [
        ("serial", ExecMode::Serial),
        ("sharded(1)", ExecMode::Sharded(1)),
        ("sharded(2)", ExecMode::Sharded(2)),
        ("sharded(4)", ExecMode::Sharded(4)),
    ];
    let results: Vec<ModeResult> =
        modes.iter().map(|(label, mode)| run_mode(label, *mode, &batches)).collect();

    // Cross-mode identity: every mode fabricates the same stream.
    let serial = &results[0];
    for r in &results[1..] {
        assert_eq!(r.delivered, serial.delivered, "{}: delivered count diverged", r.label);
        assert_eq!(r.first_ids, serial.first_ids, "{}: stream contents diverged", r.label);
    }

    let mut table =
        Table::new(["mode", "wall s", "work s", "crit-path s", "wall ×", "crit-path ×"]);
    let base_wall = serial.wall_s;
    let base_crit = serial.critical_path_s;
    for r in &results {
        table.row([
            r.label.clone(),
            f3(r.wall_s),
            f3(r.work_s),
            f3(r.critical_path_s),
            f3(base_wall / r.wall_s),
            f3(base_crit / r.critical_path_s),
        ]);
    }
    table.print("E13: epoch executor scaling (identical outputs verified)");
    println!(
        "\ncrit-path × is host-independent shard-plan quality (work / busiest shard); \
         wall × needs ≥ shards idle cores to materialize."
    );

    // Emit BENCH_parallel.json at the repo root.
    let mut rows = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"mode\": \"{}\", \"shards\": {}, \"wall_s\": {:.6}, \"work_s\": {:.6}, \
             \"critical_path_s\": {:.6}, \"epochs_per_s_wall\": {:.3}, \
             \"epochs_per_s_critical_path\": {:.3}, \"wall_speedup\": {:.3}, \
             \"critical_path_speedup\": {:.3}, \"delivered\": {}}}",
            r.label,
            r.shards,
            r.wall_s,
            r.work_s,
            r.critical_path_s,
            epochs as f64 / r.wall_s,
            epochs as f64 / r.critical_path_s.max(1e-12),
            base_wall / r.wall_s,
            base_crit / r.critical_path_s.max(1e-12),
            r.delivered,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"e13_parallel\",\n  \"host_cpus\": {host_cpus},\n  \
         \"epochs\": {epochs},\n  \"cells\": {},\n  \"chains\": {},\n  \
         \"mean_batch_tuples\": {mean_batch:.1},\n  \
         \"integral_cache\": {{\"hits\": {cache_hits}, \"misses\": {cache_misses}}},\n  \
         \"note\": \"critical_path metrics are host-independent (busiest-shard time); wall metrics depend on idle cores\",\n  \
         \"modes\": [\n{rows}\n  ]\n}}\n",
        (GRID_SIDE * GRID_SIDE),
        (GRID_SIDE * GRID_SIDE),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(path, &json).expect("write BENCH_parallel.json");
    println!("\nwrote {path}");
}
