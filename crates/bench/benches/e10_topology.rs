//! E10 — Chain vs star (tree) topology cost (§VI "Alternative topologies"
//! + "Query optimization").
//!
//! Claim under test: "a tree-like topology can be formed … we should define
//! the cost of processing a single query, and prepare an execution topology
//! that minimizes this cost." Workload: `k` same-footprint queries at
//! geometrically spaced rates, processed once as the paper's chain and once
//! as a depth-1 star, over the identical raw stream. Reported: measured
//! tuples processed, cost-model prediction, per-query pipeline depth.

use craqr_bench::{f1, preamble, synth_batch, Table};
use craqr_core::optimizer::{chain_processing_rate, pipeline_depth, star_processing_rate};
use craqr_core::plan::PlannerConfig;
use craqr_core::{AcquisitionQuery, Fabricator, TopologyShape};
use craqr_geom::{Rect, SpaceTimeWindow};
use craqr_mdpp::intensity::LinearIntensity;
use craqr_mdpp::process::InhomogeneousMdpp;
use craqr_sensing::AttributeId;
use craqr_stats::seeded_rng;

const ATTR: AttributeId = AttributeId(0);

fn run_shape(shape: TopologyShape, rates: &[f64], epochs: usize) -> u64 {
    let region = Rect::with_size(2.0, 2.0);
    let mut fab = Fabricator::new(
        region,
        PlannerConfig { grid_side: 1, batch_duration: 5.0, shape, ..Default::default() },
    );
    for &rate in rates {
        fab.insert_query(AcquisitionQuery::new(ATTR, region, rate)).unwrap();
    }
    let process = InhomogeneousMdpp::new(LinearIntensity::new([4.0, 0.0, 2.0, 0.0]), region);
    let mut rng = seeded_rng(5);
    let mut id = 0;
    for e in 0..epochs {
        let w = SpaceTimeWindow::new(region, e as f64 * 5.0, (e + 1) as f64 * 5.0);
        let batch = synth_batch(&process, &w, ATTR, id, &mut rng);
        id += batch.len() as u64;
        fab.ingest_batch(&batch);
        for qid in fab.query_ids() {
            let _ = fab.collect_output(qid);
        }
    }
    fab.tuples_processed()
}

fn main() {
    preamble(
        "E10 (chain vs tree topology)",
        "the chain reuses upstream thinning work; the star pays F-rate per tap",
        "single 2×2 km cell, k queries at rates 4·0.7^i, 20 epochs of the same raw stream",
    );

    let epochs = 20;
    let mut table = Table::new([
        "k queries",
        "chain tuples (measured)",
        "star tuples (measured)",
        "measured ratio",
        "model ratio",
        "chain max depth",
        "star depth",
    ]);

    for &k in &[1usize, 2, 4, 8, 12] {
        let rates: Vec<f64> = (0..k).map(|i| 4.0 * 0.7_f64.powi(i as i32)).collect();
        let chain = run_shape(TopologyShape::Chain, &rates, epochs);
        let star = run_shape(TopologyShape::Star, &rates, epochs);
        let f_rate = rates[0];
        let model_chain = chain_processing_rate(f_rate, &rates);
        let model_star = star_processing_rate(f_rate, &rates);
        table.row([
            k.to_string(),
            chain.to_string(),
            star.to_string(),
            f1(star as f64 / chain as f64 * 100.0) + "%",
            f1(model_star / model_chain * 100.0) + "%",
            pipeline_depth(TopologyShape::Chain, k - 1).to_string(),
            pipeline_depth(TopologyShape::Star, k - 1).to_string(),
        ]);
    }
    table.print("E10: T-stage work, chain vs star (ratio >100% = star costs more)");

    println!(
        "\nreading: both shapes share the F stage, so the total gap is diluted by F's raw\n\
         input; the *ratio trend* matches the cost model — the star's T-work grows with\n\
         k·λ̄ while the chain's grows with the decaying partial sums. The chain's price\n\
         is pipeline depth (latency), the paper's stated optimization trade-off."
    );
}
