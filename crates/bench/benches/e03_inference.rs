//! E3 — Eq. (1) parameters are recoverable by MLE and online SGD (§III-A).
//!
//! Claim under test: "given a set of acquired tuples for an attribute A⟨j⟩,
//! we can estimate the rate of an inhomogeneous MDPP using techniques like
//! maximum-likelihood estimation [12]" and the sliding-window variant "using
//! online parameter estimation algorithms like stochastic gradient descent
//! … [13]". Workload: ground truth θ* = [2.0, 0.02, 0.4, −0.1]; MLE fitted
//! on single windows of growing duration (growing n), SGD fed the same data
//! as a stream of 5-minute batches. Reported: intensity-surface RMSE
//! relative to the mean rate, and fit cost.

use craqr_bench::{f3, preamble, Table};
use craqr_geom::{Rect, SpaceTimePoint, SpaceTimeWindow};
use craqr_mdpp::fit::{fit_mle, FitConfig, SgdConfig, SgdEstimator};
use craqr_mdpp::intensity::{IntensityModel, LinearIntensity};
use craqr_mdpp::process::InhomogeneousMdpp;
use craqr_stats::seeded_rng;
use std::time::Instant;

/// Relative RMSE of the fitted surface over a probe lattice.
fn surface_rel_rmse(est: &LinearIntensity, truth: &LinearIntensity, w: &SpaceTimeWindow) -> f64 {
    let mut se = 0.0;
    let mut mean = 0.0;
    let mut n = 0.0;
    for it in 0..5 {
        for ix in 0..5 {
            for iy in 0..5 {
                let p = SpaceTimePoint::new(
                    w.t0 + w.duration() * (it as f64 + 0.5) / 5.0,
                    w.rect.x0 + w.rect.width() * (ix as f64 + 0.5) / 5.0,
                    w.rect.y0 + w.rect.height() * (iy as f64 + 0.5) / 5.0,
                );
                let d = est.rate_at(&p) - truth.rate_at(&p);
                se += d * d;
                mean += truth.rate_at(&p);
                n += 1.0;
            }
        }
    }
    (se / n).sqrt() / (mean / n)
}

fn main() {
    preamble(
        "E3 (parameter inference)",
        "θ of Eq. (1) is recoverable by batch MLE and by online SGD",
        "10×10 km, θ* = [2.0, 0.02, 0.4, −0.1], durations swept, seed 42",
    );

    let region = Rect::with_size(10.0, 10.0);
    let truth = LinearIntensity::new([2.0, 0.02, 0.4, -0.1]);
    let process = InhomogeneousMdpp::new(truth, region);

    let mut table = Table::new([
        "duration (min)",
        "n points",
        "MLE rel RMSE",
        "MLE iters",
        "MLE ms",
        "SGD rel RMSE",
        "SGD batches",
        "SGD ms",
    ]);

    for &minutes in &[2.0, 5.0, 15.0, 40.0, 100.0] {
        let window = SpaceTimeWindow::new(region, 0.0, minutes);
        let mut rng = seeded_rng(42);
        let points = process.sample(&window, &mut rng);

        // Batch MLE over the whole window.
        let t0 = Instant::now();
        let fit = fit_mle(&points, &window, FitConfig::default());
        let mle_ms = t0.elapsed().as_secs_f64() * 1e3;
        let mle_rmse = surface_rel_rmse(&fit.intensity, &truth, &window);

        // SGD over the same data as consecutive 5-minute (or shorter)
        // batches, each re-anchored to the reference window.
        let batch_len = 5.0_f64.min(minutes);
        let reference = SpaceTimeWindow::new(region, 0.0, batch_len);
        let mut sgd = SgdEstimator::new(&reference, SgdConfig::default());
        let t0 = Instant::now();
        let mut start = 0.0;
        while start < minutes - 1e-9 {
            let end = (start + batch_len).min(minutes);
            let batch: Vec<SpaceTimePoint> = points
                .iter()
                .filter(|p| p.t >= start && p.t < end)
                .map(|p| SpaceTimePoint::new(p.t - start, p.x, p.y))
                .collect();
            let w = SpaceTimeWindow::new(region, 0.0, end - start);
            sgd.observe_batch(&batch, &w);
            start = end;
        }
        let sgd_ms = t0.elapsed().as_secs_f64() * 1e3;
        let sgd_rmse = surface_rel_rmse(&sgd.estimate(), &truth, &reference);

        table.row([
            f3(minutes),
            points.len().to_string(),
            f3(mle_rmse),
            fit.iterations.to_string(),
            f3(mle_ms),
            f3(sgd_rmse),
            sgd.batches_seen().to_string(),
            f3(sgd_ms),
        ]);
    }
    table.print("E3: intensity-surface recovery error vs sample size");

    println!(
        "\nreading: MLE error shrinks roughly as 1/√n; SGD (one pass, constant memory)\n\
         tracks within a small factor of the batch MLE once enough batches have streamed."
    );
}
