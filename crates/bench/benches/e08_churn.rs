//! E8 — Query insertion/deletion maintenance is cheap (§V "Topology
//! Construction" / "Query Deletions").
//!
//! Claim under test: the insertion/deletion rules (F-first, rate-sorted T
//! splice, consecutive-T merge) are constant-time list/graph surgery, so
//! maintaining thousands of standing queries is feasible. Workload: build
//! up `n` standing queries over a 16×16 grid, then measure insert and
//! delete latency at that population. Reported: mean µs per insert /
//! delete, materialized chains, operator count proxy.

use craqr_bench::{f1, preamble, Table};
use craqr_core::plan::PlannerConfig;
use craqr_core::{AcquisitionQuery, Fabricator};
use craqr_geom::Rect;
use craqr_sensing::AttributeId;
use std::time::Instant;

fn grid_aligned_query(i: usize, rate: f64) -> AcquisitionQuery {
    // Spread queries over a 16×16 grid of 1 km cells, 1–2 cells each.
    let q = (i * 7) % 15;
    let r = (i * 11) % 15;
    let w = 1 + (i % 2);
    AcquisitionQuery::new(
        AttributeId((i % 4) as u16),
        Rect::new(q as f64, r as f64, (q + w) as f64, r as f64 + 1.0),
        rate,
    )
}

fn main() {
    preamble(
        "E8 (standing-query churn)",
        "insert/delete maintenance cost stays flat as standing queries accumulate",
        "16×16 km, grid 16×16, 4 attributes, 1–2 cell queries, rates cycled over 8 levels",
    );

    let mut table = Table::new([
        "standing queries",
        "insert µs (mean of 64)",
        "delete µs (mean of 64)",
        "materialized chains",
        "tuples work-rate model",
    ]);

    for &n in &[16usize, 64, 256, 1024, 4096] {
        let mut fab = Fabricator::new(
            Rect::with_size(16.0, 16.0),
            PlannerConfig { grid_side: 16, ..Default::default() },
        );
        let mut ids = Vec::with_capacity(n);
        for i in 0..n {
            let rate = 0.25 * (1 + (i % 8)) as f64;
            ids.push(fab.insert_query(grid_aligned_query(i, rate)).unwrap());
        }

        // Measure 64 churn pairs at this population.
        let probes = 64;
        let t0 = Instant::now();
        let mut probe_ids = Vec::with_capacity(probes);
        for i in 0..probes {
            let rate = 0.33 * (1 + (i % 8)) as f64;
            probe_ids.push(fab.insert_query(grid_aligned_query(n + i, rate)).unwrap());
        }
        let insert_us = t0.elapsed().as_secs_f64() * 1e6 / probes as f64;

        let t0 = Instant::now();
        for qid in probe_ids {
            fab.delete_query(qid).unwrap();
        }
        let delete_us = t0.elapsed().as_secs_f64() * 1e6 / probes as f64;

        // Cost-model proxy: summed chain processing rates.
        let model: f64 = fab.flatten_reports().iter().map(|(_, _, _, f_rate)| *f_rate).sum();

        table.row([
            n.to_string(),
            f1(insert_us),
            f1(delete_us),
            fab.materialized_chains().to_string(),
            f1(model),
        ]);
    }
    table.print("E8: maintenance latency vs standing-query population");

    println!(
        "\nreading: per-operation latency stays in the microsecond range and grows only\n\
         with per-cell tap counts (bounded by rate levels), not with the total standing\n\
         population — the hashmap + per-cell chain design localizes every update."
    );
}
