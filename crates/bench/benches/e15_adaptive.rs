//! E15 — adaptive-controller overhead on the epoch loop.
//!
//! Claim under test: wiring the closed-loop controller
//! (`craqr-adaptive`) into the epoch loop costs < 5% epoch time while no
//! drift fires — observation (per-query SGD updates + detector pushes) is
//! cheap relative to the loop's crowd/chain work, so leaving the
//! controller always-on is free until the world actually shifts.
//!
//! Method: one stationary scenario (no regime shifts, so the detectors
//! never fire and no replanning work is triggered) runs twice per
//! repetition — once with no `[adaptive]` block (static plan) and once
//! with the controller attached, in alternating order, each timed with
//! **thread-CPU time** (immune to descheduling on busy hosts). The gated
//! overhead is the **median of the per-repetition paired ratios** — the
//! robust estimator: paired runs share the host's momentary frequency
//! conditions, and a single noisy repetition cannot move a median. The
//! run writes `BENCH_adaptive.json` for the CI `bench-regression` job.
//! Run with `--test` for a smoke pass (fewer repetitions, same
//! assertions).

use craqr_core::exec::{thread_busy_ns, ExecMode};
use craqr_scenario::{ScenarioRunner, ScenarioSpec};

const SPEC: &str = r#"
name = "e15_overhead"
description = "stationary world for controller-overhead measurement"
seed = 1500
epochs = 80

[grid]
size_km = 6.0
side = 6

[population]
size = 3000
human_fraction = 0.1
placement = { kind = "city" }
mobility = { kind = "waypoint", speed = 0.08, pause = 5.0 }

[[attributes]]
name = "temp"
field = { kind = "temperature", base = 20.0, y_gradient = -0.15, islands = [[2.0, 2.0, 5.0, 1.0]], diurnal_amplitude = 4.0, diurnal_period = 1440.0 }

[[queries]]
text = "ACQUIRE temp FROM RECT(0,0,6,6) RATE 0.4"

[[queries]]
text = "ACQUIRE temp FROM RECT(0,0,3,3) RATE 0.9"

[[queries]]
text = "ACQUIRE temp FROM RECT(3,3,6,6) RATE 0.6"
"#;

const ADAPTIVE_BLOCK: &str = r#"
[adaptive]
enabled = true
detector = "cusum"
slack = 0.5
threshold = 8.0
warmup_epochs = 3
cooldown_epochs = 4
"#;

fn runner(src: &str) -> ScenarioRunner {
    let spec = ScenarioSpec::from_toml(src).expect("bench spec is valid");
    ScenarioRunner::new(spec).expect("bench spec runs")
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let reps = if test_mode { 5 } else { 15 };

    craqr_bench::preamble(
        "E15",
        "the adaptive controller costs <5% epoch time while no drift fires",
        "one stationary scenario, static vs controller-attached, median paired CPU-time ratio",
    );

    let static_runner = runner(SPEC);
    let adaptive_runner = runner(&format!("{SPEC}\n{ADAPTIVE_BLOCK}"));

    // Warm caches/allocator before timing anything.
    let _ = static_runner.run_full(ExecMode::Serial, 1500).expect("warmup");
    let _ = adaptive_runner.run_full(ExecMode::Serial, 1500).expect("warmup");

    // Per rep: time both configs back-to-back (thread-CPU time — immune to
    // descheduling; the pairing shares whatever CPU-frequency conditions
    // the host is in right then), alternating the order, and keep the
    // *paired ratio*. The reported overhead is the **median** of those
    // ratios — the robust estimator: a single noisy rep cannot move the
    // median, where it can move any min- or mean-based ratio by percents.
    let mut static_best = f64::INFINITY;
    let mut adaptive_best = f64::INFINITY;
    let mut ratios = Vec::with_capacity(reps);
    let mut static_delivered = 0usize;
    let mut adaptive_delivered = 0usize;
    let mut replans = 0usize;
    for rep in 0..reps {
        let time_static = |best: &mut f64| {
            let t = thread_busy_ns();
            let out = static_runner.run_full(ExecMode::Serial, 1500).expect("static run");
            let report = out.report;
            let secs = thread_busy_ns().saturating_sub(t) as f64 * 1e-9;
            *best = best.min(secs);
            (report, secs)
        };
        let time_adaptive = |best: &mut f64| {
            let t = thread_busy_ns();
            let out = adaptive_runner.run_full(ExecMode::Serial, 1500).expect("adaptive run");
            let (report, trace) = (out.report, out.trace);
            let secs = thread_busy_ns().saturating_sub(t) as f64 * 1e-9;
            *best = best.min(secs);
            (report, trace.expect("adaptive trace"), secs)
        };
        let ((static_report, s_secs), (adaptive_report, trace, a_secs)) = if rep % 2 == 0 {
            let s = time_static(&mut static_best);
            (s, time_adaptive(&mut adaptive_best))
        } else {
            let a = time_adaptive(&mut adaptive_best);
            (time_static(&mut static_best), a)
        };
        ratios.push(a_secs / s_secs);

        replans = trace.replans.len();
        assert_eq!(
            replans,
            0,
            "the overhead scenario must stay drift-free:\n{}",
            trace.canonical()
        );
        // With zero replans the controller is a pure observer: the loop's
        // deliveries must be bit-identical to the static plan's.
        static_delivered = static_report.queries.iter().map(|q| q.delivered).sum();
        adaptive_delivered = adaptive_report.queries.iter().map(|q| q.delivered).sum();
        assert_eq!(
            static_report.epochs, adaptive_report.epochs,
            "a non-firing controller perturbed the epoch loop"
        );
    }

    ratios.sort_by(f64::total_cmp);
    let median_ratio = ratios[ratios.len() / 2];
    let overhead_pct = (median_ratio - 1.0) * 100.0;
    let mut table =
        craqr_bench::Table::new(["config", "best cpu s", "epochs/s", "delivered", "replans"]);
    let epochs = 80.0;
    table.row([
        "static".to_string(),
        craqr_bench::f3(static_best),
        craqr_bench::f1(epochs / static_best),
        static_delivered.to_string(),
        "-".to_string(),
    ]);
    table.row([
        "adaptive".to_string(),
        craqr_bench::f3(adaptive_best),
        craqr_bench::f1(epochs / adaptive_best),
        adaptive_delivered.to_string(),
        replans.to_string(),
    ]);
    table.print("E15: controller overhead per run (stationary world, Serial, thread-CPU time)");
    println!("\ncontroller overhead: {overhead_pct:.2}% (gate: < 5%)");

    let json = format!(
        "{{\n  \"bench\": \"e15_adaptive\",\n  \"epochs\": 80,\n  \"reps\": {reps},\n  \
         \"static_s\": {static_best:.6},\n  \"adaptive_s\": {adaptive_best:.6},\n  \
         \"overhead_pct\": {overhead_pct:.3},\n  \"replans\": {replans},\n  \
         \"note\": \"overhead_pct = median paired thread-CPU ratio; static_s/adaptive_s are per-config minima; gate asserts < 5% when no drift fires\"\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_adaptive.json");
    std::fs::write(path, &json).expect("write BENCH_adaptive.json");
    println!("wrote {path}");

    assert!(
        overhead_pct < 5.0,
        "controller overhead {overhead_pct:.2}% exceeds the 5% budget \
         (static {static_best:.4}s vs adaptive {adaptive_best:.4}s)"
    );
}
