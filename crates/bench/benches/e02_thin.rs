//! E2 — Thin achieves the requested rate exactly in expectation (§IV-B.1).
//!
//! Claim under test: "it can be shown that this simple procedure produces a
//! point process with the desired rate λ⟨j⟩₂" — the Poisson thinning
//! theorem. Workload: homogeneous MDPP at λ1 = 8 over a 10×10 km cell for
//! 30 minutes; thin to a swept λ2. Reported: achieved rate, relative error,
//! χ² homogeneity p-value and temporal-KS p-value of the thinned stream
//! (it must remain Poisson, not merely hit the count).

use craqr_bench::{f3, preamble, tuples_from_points, Table};
use craqr_core::ops::ThinOp;
use craqr_engine::{Emitter, InputPort, Operator};
use craqr_geom::{Rect, SpaceTimeWindow};
use craqr_mdpp::diagnostics::homogeneity_report;
use craqr_mdpp::process::HomogeneousMdpp;
use craqr_sensing::AttributeId;
use craqr_stats::seeded_rng;

fn main() {
    preamble(
        "E2 (thinning accuracy)",
        "T converts P(λ1, R*) into P(λ2, R*) with λ2 exactly in expectation",
        "10×10 km cell, 30 min, λ1 = 8 /km²/min, λ2 swept, seed 42",
    );

    let cell = Rect::with_size(10.0, 10.0);
    let window = SpaceTimeWindow::new(cell, 0.0, 30.0);
    let lambda1 = 8.0;
    let raw = HomogeneousMdpp::new(lambda1, cell).sample(&window, &mut seeded_rng(42));
    let input = tuples_from_points(&raw, AttributeId(0));
    println!(
        "input: {} tuples (empirical rate {:.3})",
        input.len(),
        window.empirical_rate(input.len())
    );

    let mut table = Table::new(["λ2", "p=λ2/λ1", "kept", "achieved λ", "rel err", "χ² p", "KS p"]);
    for &lambda2 in &[8.0, 6.0, 4.0, 2.0, 1.0, 0.5, 0.1] {
        let mut op = ThinOp::new(lambda1, lambda2, 7);
        let mut em = Emitter::new(op.output_ports());
        op.process(InputPort(0), &input, &mut em);
        let out = em.into_buffers().remove(0);
        let achieved = window.empirical_rate(out.len());
        let rel = (achieved - lambda2).abs() / lambda2;
        let points: Vec<_> = out.iter().map(|t| t.point).collect();
        let rep = homogeneity_report(&points, &window, 4, 3);
        table.row([
            f3(lambda2),
            f3(op.probability()),
            out.len().to_string(),
            f3(achieved),
            format!("{:.1}%", rel * 100.0),
            format!("{:.2}", rep.chi_square.p_value),
            rep.temporal_ks.map_or("-".into(), |k| format!("{:.2}", k.p_value)),
        ]);
    }
    table.print("E2: thinning rate accuracy and Poisson-ness");

    println!(
        "\nreading: achieved rates track λ2 within sampling noise at every ratio, and the\n\
         thinned streams stay homogeneous Poisson (χ² and KS p-values well above 0.001)."
    );
}
