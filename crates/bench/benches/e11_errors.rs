//! E11 — Error injection and mitigation (§VI "Handling errors").
//!
//! Claim under test: "Errors can be introduced by sampling constraints, GPS
//! errors, sensors inaccuracies, or errors in human judgment … we will
//! explore methods for mitigating the effect of such errors." Workload: a
//! temp query under swept GPS noise and value noise, with mitigation off
//! vs on. Reported: delivered rate, fraction of delivered tuples whose
//! *true* position lay outside the query region (spatial contamination),
//! and value RMSE against ground truth.

use craqr_bench::{f3, preamble, Table};
use craqr_core::{CraqrServer, ErrorModel, Mitigation, ServerConfig};
use craqr_geom::Rect;
use craqr_sensing::fields::ConstantField;
use craqr_sensing::{AttrValue, Crowd, CrowdConfig, Mobility, Placement, PopulationConfig};

fn crowd(seed: u64) -> Crowd {
    let region = Rect::with_size(4.0, 4.0);
    Crowd::new(CrowdConfig {
        region,
        population: PopulationConfig {
            size: 1_200,
            placement: Placement::Uniform,
            mobility: Mobility::RandomWalk { sigma: 0.1 },
            human_fraction: 0.0,
        },
        seed,
    })
}

fn run(gps_sigma: f64, value_sigma: f64, mitigation: Mitigation) -> (f64, f64, usize) {
    let mut server = CraqrServer::new(
        crowd(11),
        ServerConfig {
            initial_budget: 40.0,
            error_model: ErrorModel::new(gps_sigma, 0.0, value_sigma),
            mitigation,
            ..Default::default()
        },
    );
    let qid = {
        server.register_attribute("temp", false, Box::new(ConstantField(AttrValue::Float(20.0))));
        server.submit("ACQUIRE temp FROM RECT(0, 0, 4, 4) RATE 0.3").unwrap()
    };
    let mut rejected = 0;
    for _ in 0..12 {
        let r = server.run_epoch();
        rejected += r.mitigation_rejected;
    }
    let out = server.take_output(qid);
    let minutes = server.now();
    let rate = out.len() as f64 / (16.0 * minutes);
    // Value RMSE against the constant 20 °C truth.
    let rmse = if out.is_empty() {
        f64::NAN
    } else {
        (out.iter().filter_map(|t| t.value.as_float()).map(|v| (v - 20.0).powi(2)).sum::<f64>()
            / out.len() as f64)
            .sqrt()
    };
    (rate, rmse, rejected)
}

fn main() {
    preamble(
        "E11 (error injection & mitigation)",
        "GPS/value noise corrupts fabricated streams; ingestion mitigation repairs them",
        "4×4 km, 1200 sensors, query 0.3 /km²/min, 12 epochs; truth = constant 20 °C",
    );

    let mut table = Table::new([
        "GPS σ (km)",
        "value σ (°C)",
        "mitigation",
        "achieved λ",
        "value RMSE (°C)",
        "rejected",
    ]);

    for &(gps, val) in &[(0.0, 0.0), (0.1, 0.0), (0.5, 0.0), (0.0, 2.0), (0.3, 1.0)] {
        for (label, mit) in [("off", Mitigation::off()), ("standard", Mitigation::standard())] {
            let (rate, rmse, rejected) = run(gps, val, mit);
            table.row([
                f3(gps),
                f3(val),
                label.to_string(),
                f3(rate),
                f3(rmse),
                rejected.to_string(),
            ]);
        }
    }
    table.print("E11: stream quality under injected errors");

    println!(
        "\nreading: GPS noise pushes fixes outside the region (silently *lost* without\n\
         mitigation — rate sags; with mitigation, near-boundary fixes snap back and only\n\
         hopeless ones are rejected). Value noise passes through untouched in both modes\n\
         (no outliers to clip at σ=2 °C; RMSE ≈ σ as expected); the mitigation's robust\n\
         filter only fires on genuine glitches, not on honest noise."
    );
}
