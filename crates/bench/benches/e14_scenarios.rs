//! E14 — the declarative scenario corpus as a benchmark workload.
//!
//! Claim under test: the checked-in scenario specs under `scenarios/` are
//! not just regression fixtures — each one is a complete, runnable
//! workload, and running it under `Sharded(4)` preserves the serial
//! report bit-for-bit while shrinking the executor's critical path.
//!
//! For every committed spec this bench runs the scenario once per
//! execution mode, asserts the canonical reports (and therefore the
//! checksums) are identical, and reports wall time per mode plus the
//! whole-run delivered-tuple count. Run with `--test` for a smoke pass
//! (same runs, no repetition is needed — scenarios are deterministic).

use craqr_bench::{f3, preamble, Table};
use craqr_core::exec::ExecMode;
use craqr_scenario::{ScenarioRunner, ScenarioSpec};
use std::path::PathBuf;
use std::time::Instant;

fn scenario_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios"));
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|entry| entry.expect("dir entry").path())
        .filter(|p| matches!(p.extension().and_then(|e| e.to_str()), Some("toml") | Some("json")))
        .collect();
    files.sort();
    files
}

fn main() {
    preamble(
        "E14",
        "declarative scenarios run identically under serial and sharded execution",
        "every spec in scenarios/, one run per ExecMode, canonical reports compared",
    );

    let mut table =
        Table::new(["scenario", "epochs", "delivered", "serial ms", "sharded(4) ms", "checksum"]);
    for path in scenario_files() {
        let src = std::fs::read_to_string(&path).expect("read spec");
        let spec = ScenarioSpec::from_source(&path.to_string_lossy(), &src)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let runner = ScenarioRunner::new(spec).expect("committed specs are valid");

        let t0 = Instant::now();
        let serial = runner.run(ExecMode::Serial).expect("serial run");
        let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let sharded = runner.run(ExecMode::Sharded(4)).expect("sharded run");
        let sharded_ms = t1.elapsed().as_secs_f64() * 1e3;

        assert_eq!(
            serial.canonical(),
            sharded.canonical(),
            "{}: execution mode leaked into the report",
            runner.spec().name
        );

        let delivered: usize = serial.queries.iter().map(|q| q.delivered).sum();
        table.row([
            runner.spec().name.clone(),
            serial.epochs.len().to_string(),
            delivered.to_string(),
            f3(serial_ms),
            f3(sharded_ms),
            format!("{:#018x}", serial.checksum()),
        ]);
    }
    table.print("E14: scenario corpus, serial vs sharded (identical reports asserted)");
    println!(
        "\nwall times are host-dependent; the assertion (reports identical across modes) is \
         the portable result."
    );
}
