//! E5 — Shared topologies beat per-query processing (§III, ref. [10]).
//!
//! Claim under test: "The naïve strategy of processing each query from
//! scratch (i.e., individually), is not cost effective … the data acquired
//! for a particular attribute will not be re-used across queries. Instead,
//! multiple query optimization principles need to be employed."
//!
//! Workload: `q` same-attribute queries over the same 2×2-cell footprint
//! with geometrically decreasing rates. *Shared*: one fabricator holding
//! all q queries (the CrAQR design). *Naive*: q independent fabricators,
//! each fed its own copy of the raw stream (no reuse). Reported: total
//! tuples processed by operators, operator count, and the ratio.

use craqr_bench::{f1, preamble, synth_batch, Table};
use craqr_core::plan::PlannerConfig;
use craqr_core::{AcquisitionQuery, Fabricator};
use craqr_geom::{Rect, SpaceTimeWindow};
use craqr_mdpp::intensity::LinearIntensity;
use craqr_mdpp::process::InhomogeneousMdpp;
use craqr_sensing::AttributeId;
use craqr_stats::seeded_rng;

const ATTR: AttributeId = AttributeId(0);

fn query_rates(q: usize) -> Vec<f64> {
    (0..q).map(|i| 2.0 * 0.8_f64.powi(i as i32)).collect()
}

fn footprint() -> Rect {
    Rect::new(0.0, 0.0, 2.0, 2.0)
}

fn planner() -> PlannerConfig {
    PlannerConfig { grid_side: 4, batch_duration: 5.0, ..Default::default() }
}

/// Runs `epochs` of raw stream through a fabricator, returning tuples
/// processed across all operators.
fn drive(fab: &mut Fabricator, epochs: usize, seed: u64) -> u64 {
    let region = Rect::with_size(4.0, 4.0);
    let process = InhomogeneousMdpp::new(LinearIntensity::new([1.0, 0.0, 0.8, 0.2]), region);
    let mut rng = seeded_rng(seed);
    let mut id = 0;
    for e in 0..epochs {
        let w = SpaceTimeWindow::new(region, e as f64 * 5.0, (e + 1) as f64 * 5.0);
        let batch = synth_batch(&process, &w, ATTR, id, &mut rng);
        id += batch.len() as u64;
        fab.ingest_batch(&batch);
        for qid in fab.query_ids() {
            let _ = fab.collect_output(qid);
        }
    }
    fab.tuples_processed()
}

fn main() {
    preamble(
        "E5 (multi-query sharing)",
        "shared PMAT topologies reuse tuples across queries; naive per-query processing cannot",
        "q queries, same attr, same 2×2-cell footprint, rates 2.0·0.8^i; 12 epochs of skewed raw stream",
    );

    let epochs = 12;
    let mut table = Table::new([
        "q queries",
        "shared tuples processed",
        "naive tuples processed",
        "saving",
        "shared F ops",
        "naive F ops",
    ]);

    for &q in &[1usize, 2, 4, 8, 16, 32] {
        // Shared: one fabricator with q standing queries.
        let mut shared = Fabricator::new(Rect::with_size(4.0, 4.0), planner());
        for rate in query_rates(q) {
            shared.insert_query(AcquisitionQuery::new(ATTR, footprint(), rate)).unwrap();
        }
        let shared_chains = shared.materialized_chains();
        let shared_cost = drive(&mut shared, epochs, 99);

        // Naive: q fabricators, each fed the full raw stream independently.
        let mut naive_cost = 0;
        let mut naive_chains = 0;
        for rate in query_rates(q) {
            let mut fab = Fabricator::new(Rect::with_size(4.0, 4.0), planner());
            fab.insert_query(AcquisitionQuery::new(ATTR, footprint(), rate)).unwrap();
            naive_chains += fab.materialized_chains();
            // Every naive instance consumes its own copy of the identical
            // raw stream (seed 99): no data reuse across queries.
            naive_cost += drive(&mut fab, epochs, 99);
        }

        table.row([
            q.to_string(),
            shared_cost.to_string(),
            naive_cost.to_string(),
            format!("{}x", f1(naive_cost as f64 / shared_cost as f64)),
            shared_chains.to_string(),
            naive_chains.to_string(),
        ]);
    }
    table.print("E5: operator work, shared vs per-query-from-scratch");

    println!(
        "\nreading: shared cost grows sub-linearly in q (one F per cell regardless of q;\n\
         added queries only append cheap T taps), while naive cost grows linearly — the\n\
         multiple-query-optimization argument of Section III, and with human-sensed\n\
         attributes every naive F would also mean *re-asking the crowd*."
    );
}
