//! E7 — End-to-end rate satisfaction for the paper's running examples
//! (§II, §V): `rain` (human-sensed) and `temp` (sensor-sensed) queries
//! served simultaneously over a skewed, mobile crowd.
//!
//! Claim under test: the system "accept[s] user queries for acquiring MCDS
//! and ensures (at least in a probabilistic sense) that these queries are
//! answered satisfactorily". Reported per query: requested λ, achieved λ
//! (after a budget warm-up), relative error, and the homogeneity CV of the
//! delivered stream.

use craqr_bench::{f3, preamble, Table};
use craqr_core::{CraqrServer, ServerConfig};
use craqr_geom::{Rect, SpaceTimePoint, SpaceTimeWindow};
use craqr_mdpp::diagnostics::homogeneity_report;
use craqr_sensing::{
    Crowd, CrowdConfig, Mobility, Placement, PopulationConfig, RainFront, TemperatureField,
};

fn main() {
    preamble(
        "E7 (end-to-end running examples)",
        "simultaneous rain+temp acquisitional queries meet their rates over a skewed crowd",
        "6×6 km city, 2500 sensors (60% human), hotspot placement, 12 warm-up + 24 measured epochs",
    );

    let region = Rect::with_size(6.0, 6.0);
    let crowd = Crowd::new(CrowdConfig {
        region,
        population: PopulationConfig {
            size: 2_500,
            placement: Placement::city(&region),
            mobility: Mobility::random_waypoint(0.08, 5.0),
            human_fraction: 0.6,
        },
        seed: 2015,
    });
    let mut server =
        CraqrServer::new(crowd, ServerConfig { initial_budget: 30.0, ..Default::default() });
    server.register_attribute("rain", true, Box::new(RainFront::new(1.0, 0.02, 3.0)));
    server.register_attribute("temp", false, Box::new(TemperatureField::city_default()));

    let specs = [
        ("Q1 rain city-wide", "ACQUIRE rain FROM RECT(0, 0, 6, 6) RATE 0.15"),
        ("Q2 temp downtown", "ACQUIRE temp FROM RECT(1.5, 1.5, 4.5, 4.5) RATE 0.5"),
        ("Q3 temp city-wide", "ACQUIRE temp FROM RECT(0, 0, 6, 6) RATE 0.1"),
    ];
    let mut queries = Vec::new();
    for (name, text) in specs {
        let qid = server.submit(text).expect("query plans");
        queries.push((qid, name, text));
    }

    // Warm-up: let budgets settle, discard output.
    for _ in 0..12 {
        server.run_epoch();
    }
    for (qid, _, _) in &queries {
        server.take_output(*qid);
    }

    // Measured run.
    let start = server.now();
    for _ in 0..24 {
        server.run_epoch();
    }
    let minutes = server.now() - start;

    let mut table =
        Table::new(["query", "requested λ", "tuples", "achieved λ", "rel err", "stream CV"]);
    for (qid, name, _) in &queries {
        let plan = server.fabricator().query_plan(*qid).unwrap();
        let requested = plan.query.rate;
        let area = plan.footprint.area();
        let bb = plan.footprint.bounding_box().unwrap();
        let out = server.take_output(*qid);
        let achieved = out.len() as f64 / (area * minutes);
        let rel = (achieved - requested).abs() / requested;
        let cv = if out.len() > 30 {
            let pts: Vec<SpaceTimePoint> = out.iter().map(|t| t.point).collect();
            let w = SpaceTimeWindow::new(bb, start, start + minutes);
            f3(homogeneity_report(&pts, &w, 3, 2).count_cv)
        } else {
            "-".into()
        };
        table.row([
            name.to_string(),
            f3(requested),
            out.len().to_string(),
            f3(achieved),
            format!("{:.0}%", rel * 100.0),
            cv,
        ]);
    }
    table.print("E7: requested vs achieved rates after warm-up");

    let (req, sent) = server.handler().totals();
    println!(
        "\nrequests: {req} attempted / {sent} sent; crowd response rate {:.2};\n\
         budget-exhaustion events: {}",
        server.crowd().response_rate(),
        server.handler().exhausted_events()
    );
    println!(
        "reading: all three queries converge near their requested rates despite 60% of the\n\
         crowd being reluctant humans and heavily skewed placement; the human-sensed rain\n\
         query is the hardest (higher relative error), matching the paper's motivation."
    );
}
