//! E6 — PMAT operator micro-benchmarks (criterion).
//!
//! Claim under test: PMAT operators "can be implemented using only a few
//! lines of code" and are cheap enough to run one topology per (cell,
//! attribute). Measures per-batch throughput of `F`, `T`, `P`, `U`, `S`
//! and the end-to-end per-cell chain on 10k-tuple batches.

use craqr_bench::tuples_from_points;
use craqr_core::ops::{EstimatorMode, FlattenConfig, FlattenOp};
use craqr_core::plan::PlannerConfig;
use craqr_core::{AcquisitionQuery, Fabricator, PartitionOp, SuperposeOp, ThinOp, UnionOp};
use craqr_engine::{Emitter, InputPort, Operator};
use craqr_geom::{Rect, SpaceTimeWindow};
use craqr_mdpp::fit::SgdConfig;
use craqr_mdpp::intensity::LinearIntensity;
use craqr_mdpp::process::InhomogeneousMdpp;
use craqr_sensing::AttributeId;
use craqr_stats::seeded_rng;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

fn batch_10k() -> Vec<craqr_core::CrowdTuple> {
    let cell = Rect::with_size(10.0, 10.0);
    let window = SpaceTimeWindow::new(cell, 0.0, 10.0);
    let process = InhomogeneousMdpp::new(LinearIntensity::new([5.0, 0.0, 1.0, 0.5]), cell);
    let mut rng = seeded_rng(1);
    let mut points = process.sample(&window, &mut rng);
    points.truncate(10_000);
    assert!(points.len() >= 9_000, "expected ≈10k points, got {}", points.len());
    tuples_from_points(&points, AttributeId(0))
}

fn bench_ops(c: &mut Criterion) {
    let batch = batch_10k();
    let cell = Rect::with_size(10.0, 10.0);
    let n = batch.len() as u64;

    let mut g = c.benchmark_group("pmat_ops");
    g.throughput(Throughput::Elements(n));

    g.bench_function("flatten_mle_10k", |b| {
        let (mut op, _) = FlattenOp::new(FlattenConfig {
            cell,
            batch_duration: 10.0,
            target_rate: 2.0,
            mode: EstimatorMode::BatchMle,
            seed: 2,
        });
        let ports = op.output_ports();
        b.iter_batched(
            || Emitter::new(ports),
            |mut em| op.process(InputPort(0), &batch, &mut em),
            BatchSize::SmallInput,
        );
    });

    g.bench_function("flatten_sgd_10k", |b| {
        let (mut op, _) = FlattenOp::new(FlattenConfig {
            cell,
            batch_duration: 10.0,
            target_rate: 2.0,
            mode: EstimatorMode::Sgd(SgdConfig::default()),
            seed: 2,
        });
        let ports = op.output_ports();
        b.iter_batched(
            || Emitter::new(ports),
            |mut em| op.process(InputPort(0), &batch, &mut em),
            BatchSize::SmallInput,
        );
    });

    g.bench_function("thin_10k", |b| {
        let mut op = ThinOp::new(4.0, 1.0, 3);
        let ports = op.output_ports();
        b.iter_batched(
            || Emitter::new(ports),
            |mut em| op.process(InputPort(0), &batch, &mut em),
            BatchSize::SmallInput,
        );
    });

    g.bench_function("partition4_10k", |b| {
        let mut op = PartitionOp::new(vec![
            Rect::new(0.0, 0.0, 5.0, 5.0),
            Rect::new(5.0, 0.0, 10.0, 5.0),
            Rect::new(0.0, 5.0, 5.0, 10.0),
            Rect::new(5.0, 5.0, 10.0, 10.0),
        ]);
        let ports = op.output_ports();
        b.iter_batched(
            || Emitter::new(ports),
            |mut em| op.process(InputPort(0), &batch, &mut em),
            BatchSize::SmallInput,
        );
    });

    g.bench_function("union2_10k", |b| {
        let mut op =
            UnionOp::nary(vec![Rect::new(0.0, 0.0, 5.0, 10.0), Rect::new(5.0, 0.0, 10.0, 10.0)]);
        let ports = op.output_ports();
        b.iter_batched(
            || Emitter::new(ports),
            |mut em| op.process(InputPort(0), &batch, &mut em),
            BatchSize::SmallInput,
        );
    });

    g.bench_function("superpose2_10k", |b| {
        let mut op = SuperposeOp::new(cell, vec![2.0, 2.0]);
        let ports = op.output_ports();
        b.iter_batched(
            || Emitter::new(ports),
            |mut em| op.process(InputPort(0), &batch, &mut em),
            BatchSize::SmallInput,
        );
    });

    g.finish();
}

fn bench_cell_chain(c: &mut Criterion) {
    // The full per-cell pipeline: F → T → T → T with three consumers, via
    // the fabricator's ingest path (map + process + merge).
    let region = Rect::with_size(10.0, 10.0);
    let batch = batch_10k();
    let mut g = c.benchmark_group("cell_chain");
    g.throughput(Throughput::Elements(batch.len() as u64));
    g.bench_function("ingest_3taps_10k", |b| {
        let mut fab = Fabricator::new(
            region,
            PlannerConfig { grid_side: 1, batch_duration: 10.0, ..Default::default() },
        );
        for rate in [2.0, 1.0, 0.5] {
            fab.insert_query(AcquisitionQuery::new(AttributeId(0), region, rate)).unwrap();
        }
        b.iter(|| {
            fab.ingest_batch(&batch);
            for qid in fab.query_ids() {
                criterion::black_box(fab.collect_output(qid).unwrap());
            }
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ops, bench_cell_chain
}
criterion_main!(benches);
