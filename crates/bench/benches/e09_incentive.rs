//! E9 — Incentives reduce violations when budgets alone cannot (§VI
//! "Including incentives").
//!
//! Claim under test: "Another alternative is to offer more incentive to the
//! mobile sensors to respond." Workload: a very reluctant human crowd (base
//! response probability 0.05, incentive sensitivity 1.0) and a demanding
//! query, with the budget *capped hard* (10 requests/epoch/cell) so
//! request-rate escalation cannot buy the rate. Sweep the incentive
//! escalation step. Reported: steady-state N_v, achieved rate, mean
//! incentive paid, crowd response rate.

use craqr_bench::{f3, preamble, Table};
use craqr_core::{BudgetTuner, CraqrServer, IncentivePolicy, ServerConfig};
use craqr_geom::Rect;
use craqr_sensing::fields::ConstantField;
use craqr_sensing::{
    AttrValue, Crowd, CrowdConfig, Mobility, Placement, PopulationConfig, ResponseModel,
};

fn reluctant_crowd(seed: u64) -> Crowd {
    let region = Rect::with_size(2.0, 2.0);
    let mut crowd = Crowd::new(CrowdConfig {
        region,
        population: PopulationConfig {
            size: 800,
            placement: Placement::Uniform,
            mobility: Mobility::RandomWalk { sigma: 0.05 },
            human_fraction: 1.0,
        },
        seed,
    });
    // Homogeneous, very reluctant, incentive-sensitive participants.
    crowd.set_all_response_models(ResponseModel::new(0.05, 1.0, 1.0));
    crowd
}

fn main() {
    preamble(
        "E9 (incentive escalation)",
        "when the budget is capped, paying more buys the missing responses",
        "2×2 km, 800 humans (p₀=0.05, k=1.0), query 1.0 /km²/min, budget hard-capped at 10/epoch/cell",
    );

    let mut table = Table::new([
        "incentive step",
        "max incentive",
        "steady N_v %",
        "achieved λ",
        "mean incentive",
        "response rate",
        "exhausted events",
    ]);

    for &(step, max) in &[(0.0, 0.0), (0.25, 2.0), (0.5, 5.0), (1.0, 10.0)] {
        let mut server = CraqrServer::new(
            reluctant_crowd(9),
            ServerConfig {
                initial_budget: 10.0,
                tuner: BudgetTuner {
                    nv_threshold: 10.0,
                    delta: 5.0,
                    min_budget: 1.0,
                    max_budget: 10.0, // deliberately tight: requests cannot scale
                },
                incentive: IncentivePolicy { base: 0.0, step, max },
                ..Default::default()
            },
        );
        let attr = server.register_attribute(
            "temp",
            false,
            Box::new(ConstantField(AttrValue::Float(1.0))),
        );
        let qid = server.submit("ACQUIRE temp FROM RECT(0, 0, 2, 2) RATE 1.0").unwrap();

        // Warm-up (incentive escalation needs a few exhausted epochs), then
        // measure.
        for _ in 0..10 {
            server.run_epoch();
        }
        server.take_output(qid);
        let start = server.now();
        let mut nv_acc = 0.0;
        let mut nv_n = 0usize;
        for _ in 0..20 {
            server.run_epoch();
            for (_, a, report, _) in server.fabricator().flatten_reports() {
                if a == attr {
                    if let Some(nv) = report.smoothed_nv() {
                        nv_acc += nv;
                        nv_n += 1;
                    }
                }
            }
        }
        let minutes = server.now() - start;
        let out = server.take_output(qid);
        let achieved = out.len() as f64 / (4.0 * minutes);
        // Mean incentive across all materialized cells.
        let demands = server.fabricator().demands();
        let mean_incentive: f64 =
            demands.iter().map(|(c, a, _)| server.handler().incentive_of(*c, *a)).sum::<f64>()
                / demands.len().max(1) as f64;

        table.row([
            f3(step),
            f3(max),
            f3(nv_acc / nv_n.max(1) as f64),
            f3(achieved),
            f3(mean_incentive),
            f3(server.crowd().response_rate()),
            server.handler().exhausted_events().to_string(),
        ]);
    }
    table.print("E9: violations and achieved rate vs incentive escalation (budget capped)");

    println!(
        "\nreading: with escalation disabled the capped budget leaves N_v pinned high and\n\
         the rate unmet; raising the incentive step buys response probability (p₀=0.05\n\
         towards ~1), driving N_v down and the achieved rate towards the request — the\n\
         Section VI trade of money for requests."
    );
}
