//! E17 — pipelined epoch executor: overlap across the staged dataflow.
//!
//! Claim under test: spreading the staged epoch schedule over four
//! long-lived stage workers (drain → ingest → control → render,
//! `craqr_core::EpochDriver::run_pipelined`) overlaps consecutive epochs
//! while leaving every checksummed byte identical to serial execution
//! (the `tests/pipeline.rs` determinism contract).
//!
//! Workload: an 8×8 grid fed by a few-thousand-sensor crowd, three
//! standing whole-region queries, a control hook that walks the full
//! observation every epoch, and a render tap that serializes each
//! epoch's drained responses into a checksum — so all four stages carry
//! real weight.
//!
//! Two metrics:
//!
//! - **overlap speedup** (the acceptance metric): every stage worker
//!   records its per-slot thread-CPU spans
//!   ([`PhaseTimer::observe_stage`]). The *barrier* makespan is the sum
//!   of all spans — what a serial schedule costs, since it runs the
//!   stages back-to-back. The *pipeline* makespan replays the same spans
//!   through the dataflow's dependency recurrence (stage s of epoch t
//!   starts when both its upstream message and its own previous slot are
//!   done; the ingest stage additionally waits for the control actions
//!   of t-1 before issuing t+1's orders, pinning the serial schedule's
//!   lag). `barrier / pipeline` is the overlap the stage decomposition
//!   achieves, from CPU-time spans only — host-independent, like E13's
//!   critical-path metric. Must exceed **1.2×** and is regression-gated
//!   against the committed `BENCH_pipeline.json` in CI.
//! - **wall speedup**: end-to-end wall clock, serial vs pipelined, on
//!   *this* host. Materializes only with ≥ 4 idle cores.
//!
//! The two runs' reports and tap checksums are asserted identical
//! (timing fields excluded) before anything is written. Run with
//! `--test` for a short smoke pass.

use craqr_bench::{f3, preamble, Table};
use craqr_core::{
    ControlAction, ControlHook, CraqrServer, EpochInputsRecord, EpochObservation, EpochPhase,
    EpochTap, PhaseTimer, PipelineStage, ServerConfig,
};
use craqr_geom::Rect;
use craqr_sensing::{
    fields::ConstantField, AttrValue, Crowd, CrowdConfig, Mobility, Placement, PopulationConfig,
    RainFront,
};
use std::time::Instant;

const REGION_KM: f64 = 8.0;
const POPULATION: usize = 4000;

fn server() -> CraqrServer {
    let crowd = Crowd::new(CrowdConfig {
        region: Rect::with_size(REGION_KM, REGION_KM),
        population: PopulationConfig {
            size: POPULATION,
            placement: Placement::Uniform,
            mobility: Mobility::RandomWalk { sigma: 0.2 },
            human_fraction: 0.0,
        },
        seed: 17,
    });
    let mut config = ServerConfig::default();
    config.planner.grid_side = 8;
    let mut s = CraqrServer::new(crowd, config);
    s.register_attribute("rain", true, Box::new(RainFront::new(2.0, 0.0, 2.0)));
    s.register_attribute("temp", false, Box::new(ConstantField(AttrValue::Float(21.0))));
    for (attr, rate) in [("rain", 2.0), ("rain", 1.0), ("temp", 0.5)] {
        s.submit(&format!("ACQUIRE {attr} FROM RECT(0,0,{REGION_KM},{REGION_KM}) RATE {rate}"))
            .unwrap();
    }
    s
}

/// Walks the whole observation every epoch (plan, budgets, report) so
/// the control stage carries real weight; never actuates, so the run
/// stays identical to a hook-free one byte-wise.
#[derive(Default)]
struct SurveyHook {
    folded: f64,
}

impl ControlHook for SurveyHook {
    fn on_epoch(&mut self, obs: &EpochObservation) -> Vec<ControlAction> {
        for q in &obs.plan.queries {
            self.folded += q.rate * q.area;
            for (cell, w) in &q.cells {
                self.folded += w + obs.budgets.of(*cell, q.attr).unwrap_or(0.0);
            }
        }
        self.folded += obs.report.responses as f64;
        Vec::new()
    }
}

/// Serializes each epoch's drained responses and folds the bytes into a
/// checksum — a stand-in for the run-log append the render stage owns in
/// production, and a cross-run identity fingerprint.
#[derive(Default)]
struct RenderTap {
    checksum: u64,
}

impl EpochTap for RenderTap {
    fn on_epoch(&mut self, record: &EpochInputsRecord<'_>) {
        use std::fmt::Write;
        let mut buf = String::with_capacity(64 * record.responses.len());
        for r in record.responses {
            let _ = write!(buf, "{r:?};");
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in buf.as_bytes() {
            h = (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.checksum = self.checksum.rotate_left(7) ^ h ^ record.report.epoch;
    }
}

/// Collects every stage worker's `(stage, slot, phase, ns)` spans; the
/// phase-only serial path is deliberately ignored so installing it on a
/// serial run costs nothing.
#[derive(Default)]
struct SpanTimer {
    spans: Vec<(PipelineStage, u64, EpochPhase, u64)>,
}

impl PhaseTimer for SpanTimer {
    fn observe(&mut self, _phase: EpochPhase, _nanos: u64) {}

    fn observe_stage(&mut self, stage: PipelineStage, slot: u64, phase: EpochPhase, nanos: u64) {
        self.spans.push((stage, slot, phase, nanos));
    }
}

struct RunResult {
    reports: Vec<craqr_core::EpochReport>,
    tap_checksum: u64,
    wall_s: f64,
}

fn run(epochs: u64, pipelined: bool, timer: Option<&mut SpanTimer>) -> RunResult {
    let mut server = server();
    let mut hook = SurveyHook::default();
    let mut tap = RenderTap::default();
    let started = Instant::now();
    let outcome = {
        let mut d = server.driver().hook(&mut hook).tap(&mut tap);
        if let Some(t) = timer {
            d = d.timer(t);
        }
        if pipelined {
            d.run_pipelined(epochs)
        } else {
            d.run(epochs)
        }
    };
    let wall_s = started.elapsed().as_secs_f64();
    let mut reports = outcome.reports;
    for r in &mut reports {
        for s in &mut r.exec.shards {
            s.busy_ns = 0; // thread-CPU measurements, legitimately host-varying
        }
    }
    RunResult { reports, tap_checksum: tap.checksum, wall_s }
}

/// Per-slot busy nanoseconds, decomposed the way the dataflow needs:
/// the ingest stage splits at the point it hands the next slot's orders
/// upstream (everything before feeds slot t+1's drain; everything after
/// only feeds slot t's own downstream).
struct SlotSpans {
    drain: Vec<f64>,
    ingest_pre: Vec<f64>,
    ingest_post: Vec<f64>,
    control: Vec<f64>,
    render: Vec<f64>,
}

fn decompose(spans: &[(PipelineStage, u64, EpochPhase, u64)], n: usize) -> SlotSpans {
    let mut s = SlotSpans {
        drain: vec![0.0; n],
        ingest_pre: vec![0.0; n],
        ingest_post: vec![0.0; n],
        control: vec![0.0; n],
        render: vec![0.0; n],
    };
    let mut ingest_last: Vec<f64> = vec![0.0; n];
    for &(stage, slot, _phase, ns) in spans {
        let t = slot as usize;
        let ns = ns as f64;
        match stage {
            PipelineStage::Drain => s.drain[t] += ns,
            PipelineStage::Ingest => {
                // Fold the previous "last span" into the pre half; the
                // newest span becomes the candidate post half.
                s.ingest_pre[t] += ingest_last[t];
                ingest_last[t] = ns;
            }
            PipelineStage::Control => s.control[t] += ns,
            PipelineStage::Render => s.render[t] += ns,
        }
    }
    s.ingest_post = ingest_last;
    s
}

/// The dataflow's completion-time recurrence over measured spans: each
/// stage of slot t starts when its upstream message and its own slot
/// t-1 are both done; ingest additionally waits for slot t-1's control
/// actions before issuing slot t+1's orders (the pinned control lag).
fn pipeline_makespan(s: &SlotSpans) -> f64 {
    let n = s.drain.len();
    let (mut c1, mut c2a, mut c2b, mut c3, mut c4) = (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for t in 0..n {
        let c1_new = c1.max(c2a) + s.drain[t];
        let c2a_new = c1_new.max(c2b).max(c3) + s.ingest_pre[t];
        let c2b_new = c2a_new + s.ingest_post[t];
        let c3_new = c2b_new.max(c3) + s.control[t];
        let c4_new = c3_new.max(c4) + s.render[t];
        (c1, c2a, c2b, c3, c4) = (c1_new, c2a_new, c2b_new, c3_new, c4_new);
    }
    c4
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let epochs: u64 = if test_mode { 4 } else { 24 };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    preamble(
        "E17 (pipelined epoch executor)",
        "the staged dataflow overlaps consecutive epochs while every checksummed byte stays serial-identical",
        "8×8 grid, 4000-sensor crowd, 3 standing queries, observation-walking hook, response-serializing tap",
    );

    let serial = run(epochs, false, None);
    let mut timer = SpanTimer::default();
    let piped = run(epochs, true, Some(&mut timer));

    // Identity first: a performance number for a wrong answer is noise.
    assert_eq!(
        serial.reports, piped.reports,
        "pipelined reports diverge from serial — determinism broken"
    );
    assert_eq!(
        serial.tap_checksum, piped.tap_checksum,
        "pipelined tap stream diverges from serial — determinism broken"
    );

    let slots = decompose(&timer.spans, epochs as usize);
    let stage_totals: [(&str, f64); 4] = [
        ("drain", slots.drain.iter().sum()),
        ("ingest", slots.ingest_pre.iter().sum::<f64>() + slots.ingest_post.iter().sum::<f64>()),
        ("control", slots.control.iter().sum()),
        ("render", slots.render.iter().sum()),
    ];
    let barrier_ns: f64 = stage_totals.iter().map(|(_, ns)| ns).sum();
    let pipeline_ns = pipeline_makespan(&slots);
    let overlap = barrier_ns / pipeline_ns.max(1.0);
    let wall_speedup = serial.wall_s / piped.wall_s.max(1e-12);

    let mut table = Table::new(["stage", "busy s", "share"]);
    for (name, ns) in &stage_totals {
        table.row([(*name).to_string(), f3(ns / 1e9), format!("{:.0}%", 100.0 * ns / barrier_ns)]);
    }
    table.print("E17: per-stage thread-CPU busy time (pipelined run)");

    let mut summary = Table::new(["metric", "value"]);
    summary.row(["barrier makespan s (Σ spans)".to_string(), f3(barrier_ns / 1e9)]);
    summary.row(["pipeline makespan s (dataflow recurrence)".to_string(), f3(pipeline_ns / 1e9)]);
    summary.row(["overlap speedup × (host-independent)".to_string(), f3(overlap)]);
    summary.row(["wall serial s".to_string(), f3(serial.wall_s)]);
    summary.row(["wall pipelined s".to_string(), f3(piped.wall_s)]);
    summary.row([format!("wall speedup × (this host, {host_cpus} cpus)"), f3(wall_speedup)]);
    summary.print("E17: overlap (identical outputs verified)");

    if !test_mode {
        assert!(
            overlap > 1.2,
            "overlap speedup {overlap:.3}x at 4 stages is below the 1.2x acceptance floor"
        );
    }

    let stage_json: Vec<String> =
        stage_totals.iter().map(|(name, ns)| format!("\"{name}\": {:.6}", ns / 1e9)).collect();
    let json = format!(
        "{{\n  \"bench\": \"e17_pipeline\",\n  \"host_cpus\": {host_cpus},\n  \
         \"epochs\": {epochs},\n  \"stages\": 4,\n  \
         \"stage_busy_s\": {{{}}},\n  \
         \"barrier_s\": {:.6},\n  \"pipeline_s\": {:.6},\n  \
         \"overlap_speedup\": {:.3},\n  \
         \"wall_serial_s\": {:.6},\n  \"wall_pipelined_s\": {:.6},\n  \
         \"wall_speedup\": {:.3},\n  \
         \"note\": \"overlap_speedup is host-independent (thread-CPU spans through the dataflow recurrence); wall metrics need >= 4 idle cores\"\n}}\n",
        stage_json.join(", "),
        barrier_ns / 1e9,
        pipeline_ns / 1e9,
        overlap,
        serial.wall_s,
        piped.wall_s,
        wall_speedup,
    );
    if test_mode {
        println!("\n--test: skipping BENCH_pipeline.json rewrite and the 1.2x floor");
        return;
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(path, &json).expect("write BENCH_pipeline.json");
    println!("\nwrote {path}");
}
