//! E4 — Budget tuning keeps N_v under the threshold (§V "Budget Tuning").
//!
//! Claim under test: "If N_v exceeds the threshold, then the budget
//! β⟨j⟩(q,r) is increased by Δβ, otherwise it is decreased by the same
//! amount." Workload: a single-cell query at a demanding rate. The crowd's
//! participation collapses at epoch 12 (every sensor switches to a
//! reluctant-human response model) and recovers at epoch 24; the budget
//! must climb through the outage and fall back afterwards. Series:
//! per-epoch smoothed N_v, budget β, requests sent, delivered rate.

use craqr_bench::{f3, preamble, Table};
use craqr_core::{BudgetTuner, CraqrServer, ServerConfig};
use craqr_geom::{CellId, Rect};
use craqr_sensing::fields::ConstantField;
use craqr_sensing::{
    AttrValue, Crowd, CrowdConfig, Mobility, Placement, PopulationConfig, ResponseModel,
};

const PHASE: u64 = 12; // epochs per phase (5 simulated minutes each)

fn main() {
    preamble(
        "E4 (budget tuning)",
        "the N_v feedback loop adapts β to crowd availability in both directions",
        "2×2 km, one query at 1.5 /km²/min; participation collapses at epoch 12, recovers at 24",
    );

    let region = Rect::with_size(2.0, 2.0);
    let crowd = Crowd::new(CrowdConfig {
        region,
        population: PopulationConfig {
            size: 600,
            placement: Placement::Uniform,
            mobility: Mobility::RandomWalk { sigma: 0.05 },
            human_fraction: 0.0,
        },
        seed: 4,
    });
    let mut server = CraqrServer::new(
        crowd,
        ServerConfig {
            initial_budget: 10.0,
            tuner: BudgetTuner {
                nv_threshold: 10.0,
                delta: 4.0,
                min_budget: 1.0,
                max_budget: 400.0,
            },
            ..Default::default()
        },
    );
    let attr =
        server.register_attribute("temp", false, Box::new(ConstantField(AttrValue::Float(1.0))));
    let qid = server.submit("ACQUIRE temp FROM RECT(0, 0, 1, 1) RATE 1.5").unwrap();
    let cell = CellId::new(0, 0);

    let mut table = Table::new([
        "epoch",
        "phase",
        "smoothed N_v %",
        "budget β",
        "requests sent",
        "delivered",
        "achieved λ",
    ]);

    for epoch in 0..3 * PHASE {
        // Phase transitions: collapse, then recovery.
        if epoch == PHASE {
            server.crowd_mut().set_all_response_models(ResponseModel::new(0.05, 0.0, 2.0));
        } else if epoch == 2 * PHASE {
            server.crowd_mut().set_all_response_models(ResponseModel::automatic());
        }
        let report = server.run_epoch();
        let nv = server
            .fabricator()
            .flatten_reports()
            .iter()
            .find(|(c, a, _, _)| *c == cell && *a == attr)
            .and_then(|(_, _, r, _)| r.smoothed_nv())
            .unwrap_or(0.0);
        let budget = server.handler().budget_of(cell, attr).unwrap_or(0.0);
        let delivered: usize = report.delivered.iter().map(|(_, n)| *n).sum();
        let achieved = delivered as f64 / 5.0; // 1 km² cell × 5 min epochs
        let phase = match epoch / PHASE {
            0 => "normal",
            1 => "OUTAGE",
            _ => "recovered",
        };
        table.row([
            epoch.to_string(),
            phase.to_string(),
            f3(nv),
            f3(budget),
            report.dispatch.sent.to_string(),
            delivered.to_string(),
            f3(achieved),
        ]);
    }
    table.print("E4: budget feedback series (threshold N_v = 10%, Δβ = 4)");

    let out = server.take_output(qid);
    println!(
        "\ntotal fabricated: {} tuples over {:.0} min → overall rate {:.3} (requested 1.5)",
        out.len(),
        server.now(),
        out.len() as f64 / server.now()
    );
    println!(
        "reading: β climbs while N_v sits above the 10% threshold (ramp-up and outage),\n\
         and decays once the crowd answers again — both directions of the Section V rule,\n\
         plus incentive escalation on exhaustion ({} exhausted events).",
        server.handler().exhausted_events()
    );
}
