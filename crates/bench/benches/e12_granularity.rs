//! E12 — The grid-granularity knob `h` (§IV).
//!
//! Claim under test: "The region R is partitioned into a √h × √h sized
//! grid. h is a user-defined parameter and controls the granularity at
//! which queries can be processed." Finer grids let query footprints snap
//! tighter (fewer `P`-carved partial cells, less over-acquisition) but
//! materialize more chains (more `F` estimators, more maintenance).
//!
//! Workload: one query whose rectangle is *not* aligned to coarse grids
//! (offset by 0.5 km), swept over `√h ∈ {1, 2, 4, 8, 16}`. Reported:
//! materialized chains, partial (P-carved) cells, the fraction of acquired
//! cell-area the query actually wanted (carving efficiency), achieved rate,
//! and plan-maintenance latency.

use craqr_bench::{f1, f3, preamble, synth_batch, Table};
use craqr_core::plan::PlannerConfig;
use craqr_core::{AcquisitionQuery, Fabricator};
use craqr_geom::{Rect, SpaceTimeWindow};
use craqr_mdpp::intensity::LinearIntensity;
use craqr_mdpp::process::InhomogeneousMdpp;
use craqr_sensing::AttributeId;
use craqr_stats::seeded_rng;
use std::time::Instant;

const ATTR: AttributeId = AttributeId(0);

fn main() {
    preamble(
        "E12 (grid granularity h)",
        "√h trades carving precision against materialized-chain count",
        "8×8 km region, one misaligned 3×3 km query at 0.5 /km²/min, 12 epochs, √h swept",
    );

    let region = Rect::with_size(8.0, 8.0);
    let query_rect = Rect::new(0.5, 0.5, 3.5, 3.5); // misaligned on purpose
    let minutes = 60.0;

    let mut table = Table::new([
        "√h",
        "h (cells)",
        "chains",
        "partial cells",
        "carve efficiency",
        "achieved λ",
        "insert µs",
    ]);

    for &side in &[1u32, 2, 4, 8, 16] {
        // The min-area rule is disabled for the sweep: at √h ∈ {1, 2} the
        // 9 km² query is smaller than one cell, i.e. the paper's rule would
        // *forbid* it outright — the strongest form of the granularity
        // trade-off, noted in the reading below.
        let mut fab = Fabricator::new(
            region,
            PlannerConfig {
                grid_side: side,
                batch_duration: 5.0,
                enforce_min_area: false,
                ..Default::default()
            },
        );
        let t0 = Instant::now();
        let qid = fab
            .insert_query(AcquisitionQuery::new(ATTR, query_rect, 0.5))
            .expect("query plans at every granularity");
        let insert_us = t0.elapsed().as_secs_f64() * 1e6;

        let (partial, touched_area, footprint_area) = {
            let plan = fab.query_plan(qid).unwrap();
            let partial = plan.cells.iter().filter(|(_, _, full)| !*full).count();
            // Carving efficiency: wanted area / area of all touched cells.
            // The flatten stage acquires per *cell*, so untouched parts of
            // partial cells are acquisition the query did not need.
            let touched: f64 =
                plan.cells.iter().map(|(cell, _, _)| fab.grid().cell_rect(*cell).area()).sum();
            (partial, touched, plan.footprint.area())
        };
        let efficiency = footprint_area / touched_area;

        // Drive a skewed raw stream and measure the delivered rate.
        let process = InhomogeneousMdpp::new(LinearIntensity::new([2.0, 0.0, 0.5, 0.25]), region);
        let mut rng = seeded_rng(12);
        let mut id = 0;
        let mut delivered = 0usize;
        for e in 0..12 {
            let w = SpaceTimeWindow::new(region, e as f64 * 5.0, (e + 1) as f64 * 5.0);
            let batch = synth_batch(&process, &w, ATTR, id, &mut rng);
            id += batch.len() as u64;
            fab.ingest_batch(&batch);
            delivered += fab.collect_output(qid).unwrap().len();
        }
        let achieved = delivered as f64 / (footprint_area * minutes);

        table.row([
            side.to_string(),
            (side * side).to_string(),
            fab.materialized_chains().to_string(),
            partial.to_string(),
            format!("{}%", f1(efficiency * 100.0)),
            f3(achieved),
            f1(insert_us),
        ]);
    }
    table.print("E12: one misaligned query across grid granularities");

    println!(
        "\nreading: at √h=1 the whole region is one cell (14% of acquired area wanted) and\n\
         the paper's min-area rule would reject the query outright; finer grids raise\n\
         carving efficiency towards 100% (fewer wasted acquisitions per partial cell) at\n\
         the price of more materialized chains — the paper's h is exactly this\n\
         precision/overhead dial. The achieved rate stays on target at every granularity\n\
         because the P-operators make correctness independent of h."
    );
}
