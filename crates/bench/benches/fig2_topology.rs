//! Fig. 2 — the worked query-processing example, regenerated.
//!
//! Reconstructs the exact scenario of the paper's Fig. 2 (see
//! `tests/fig2_topology.rs` for the assertion-level reproduction): queries
//! `Q⟨1⟩₁` (rain, L-shaped R1), `Q⟨2⟩₂` (temp, square R2) and `Q⟨2⟩₃`
//! (temp, sub-cell R3), λ1 > λ2 > λ3, on a 3×3 grid. Prints the map
//! (hashmap keys), the process topologies (Fig. 2b), runs a stream through
//! them, prints the merge results (Fig. 2c), then replays the paper's
//! deletion narrative for Q⟨1⟩.

use craqr_bench::{f3, preamble, synth_batch, Table};
use craqr_core::plan::PlannerConfig;
use craqr_core::{AcquisitionQuery, Fabricator};
use craqr_geom::{Rect, SpaceTimeWindow};
use craqr_mdpp::intensity::LinearIntensity;
use craqr_mdpp::process::InhomogeneousMdpp;
use craqr_sensing::AttributeId;
use craqr_stats::seeded_rng;

const RAIN: AttributeId = AttributeId(1);
const TEMP: AttributeId = AttributeId(2);

fn paper_cell_rect(q: u32, r: u32) -> Rect {
    let (q0, r0) = ((q - 1) as f64, (r - 1) as f64);
    Rect::new(q0, r0, q0 + 1.0, r0 + 1.0)
}

fn main() {
    preamble(
        "Fig. 2 (query processing)",
        "map → process → merge for Q⟨1⟩₁, Q⟨2⟩₂, Q⟨2⟩₃ with λ1 > λ2 > λ3",
        "3×3 grid over 3×3 km; λ = (4, 2, 1); R1 = L of cells (2,3),(3,2),(3,3); R2 = 2×2 block; R3 ⊂ cell (2,2)",
    );

    let mut fab = Fabricator::new(
        Rect::with_size(3.0, 3.0),
        PlannerConfig {
            grid_side: 3,
            batch_duration: 5.0,
            enforce_min_area: false,
            ..Default::default()
        },
    );

    let q1 = fab
        .insert_query_parts(
            AcquisitionQuery::new(RAIN, Rect::new(1.0, 1.0, 3.0, 3.0), 4.0),
            &[paper_cell_rect(2, 3), paper_cell_rect(3, 2), paper_cell_rect(3, 3)],
        )
        .unwrap();
    let q2 =
        fab.insert_query(AcquisitionQuery::new(TEMP, Rect::new(0.0, 0.0, 2.0, 2.0), 2.0)).unwrap();
    let q3 = fab
        .insert_query(AcquisitionQuery::new(TEMP, Rect::new(1.25, 1.25, 1.9, 1.9), 1.0))
        .unwrap();

    println!("\n(b) process — the materialized per-cell topologies:");
    print!("{}", fab.explain());
    println!("(cells are 0-based here; the paper's R(q,r) = our R(q-1,r-1))");

    // Drive a skewed raw stream for both attributes, 12 epochs.
    let region = Rect::with_size(3.0, 3.0);
    let mut rng = seeded_rng(7);
    let mut id = 0;
    for attr in [RAIN, TEMP] {
        let process = InhomogeneousMdpp::new(LinearIntensity::new([6.0, 0.0, 2.0, 1.0]), region);
        for e in 0..12 {
            let w = SpaceTimeWindow::new(region, e as f64 * 5.0, (e + 1) as f64 * 5.0);
            let batch = synth_batch(&process, &w, attr, id, &mut rng);
            id += batch.len() as u64;
            fab.ingest_batch(&batch);
        }
    }

    let minutes = 60.0;
    let mut table = Table::new(["query", "requested λ", "footprint km²", "tuples", "achieved λ"]);
    for (qid, requested) in [(q1, 4.0), (q2, 2.0), (q3, 1.0)] {
        let area = fab.query_plan(qid).unwrap().footprint.area();
        let out = fab.collect_output(qid).unwrap();
        table.row([
            qid.to_string(),
            f3(requested),
            f3(area),
            out.len().to_string(),
            f3(out.len() as f64 / (area * minutes)),
        ]);
    }
    table.print("(c) merge — fabricated MCDS per query");

    println!("\nreplaying the deletion narrative: \"if we delete Q⟨1⟩ …\"");
    fab.delete_query(q1).unwrap();
    println!("after deleting {q1} (its three rain cells dematerialize):");
    print!("{}", fab.explain());
    fab.delete_query(q3).unwrap();
    println!("after deleting {q3} (consecutive T's merge in cell (1,1)):");
    print!("{}", fab.explain());
    fab.delete_query(q2).unwrap();
    println!("after deleting {q2}: {} materialized cells remain", fab.materialized_cells());
}
