//! E1 — Flatten yields an approximately homogeneous output (§IV-B.1).
//!
//! Claim under test: "a point process can be made homogeneous by retaining
//! a random subset of tuples, such that more tuples are retained in areas
//! of low rate and less tuples are retained in areas of high rate [12]".
//!
//! Workload: inhomogeneous MDPPs with increasingly steep linear gradients
//! (Eq. (1) with θ2 swept); one 10-minute batch per configuration over a
//! 10×10 km cell; flatten target λ̄ = 0.5 /km²/min, batch MLE estimation.
//! Reported per steepness: input/output χ² homogeneity p-value, count CV,
//! dispersion index, achieved rate, and the percent rate violation N_v.

use craqr_bench::{f3, preamble, tuples_from_points, Table};
use craqr_core::ops::{EstimatorMode, FlattenConfig, FlattenOp};
use craqr_engine::{Emitter, InputPort, Operator};
use craqr_geom::{Rect, SpaceTimeWindow};
use craqr_mdpp::diagnostics::homogeneity_report;
use craqr_mdpp::intensity::LinearIntensity;
use craqr_mdpp::process::InhomogeneousMdpp;
use craqr_sensing::AttributeId;
use craqr_stats::seeded_rng;

fn main() {
    preamble(
        "E1 (flatten homogenization)",
        "F converts P̃(λ̃, R*) into an approximately homogeneous P(λ̄, R*)",
        "10×10 km cell, 10-min batch, λ̄=0.5, θ = [base, 0, θ2, 0], MLE per batch, seed 42",
    );

    let cell = Rect::with_size(10.0, 10.0);
    let window = SpaceTimeWindow::new(cell, 0.0, 10.0);
    let target = 0.5;

    let mut table = Table::new([
        "θ2 (skew)",
        "n_in",
        "in χ² p",
        "in CV",
        "out χ² p",
        "out CV",
        "out dispersion",
        "out rate",
        "N_v %",
    ]);

    for &theta2 in &[0.0, 0.1, 0.25, 0.5, 1.0, 2.0] {
        // Keep the mean input rate near 2.0 where possible (mean = base +
        // 5·θ2 over the cell); steeper gradients clamp at a small positive
        // base and simply carry more tuples.
        let base = (2.0f64 - theta2 * 5.0).max(0.05);
        let truth = LinearIntensity::new([base, 0.0, theta2, 0.0]);
        let process = InhomogeneousMdpp::new(truth, cell);
        let mut rng = seeded_rng(42);
        let raw = process.sample(&window, &mut rng);
        let in_rep = homogeneity_report(&raw, &window, 4, 2);

        let (mut op, report) = FlattenOp::new(FlattenConfig {
            cell,
            batch_duration: 10.0,
            target_rate: target,
            mode: EstimatorMode::BatchMle,
            seed: 7,
        });
        let mut em = Emitter::new(op.output_ports());
        op.process(InputPort(0), &tuples_from_points(&raw, AttributeId(0)), &mut em);
        let out = em.into_buffers().remove(0);
        let out_points: Vec<_> = out.iter().map(|t| t.point).collect();
        let out_rep = homogeneity_report(&out_points, &window, 4, 2);

        table.row([
            f3(theta2),
            in_rep.n.to_string(),
            format!("{:.1e}", in_rep.chi_square.p_value),
            f3(in_rep.count_cv),
            format!("{:.1e}", out_rep.chi_square.p_value),
            f3(out_rep.count_cv),
            f3(out_rep.dispersion.index),
            f3(out_rep.empirical_rate),
            f3(report.last_nv()),
        ]);
    }
    table.print("E1: homogenization quality vs input skew");

    println!(
        "\nreading: input χ² p collapses towards 0 as skew grows (inhomogeneous), while the\n\
         flattened output keeps p ≫ 0.001, CV near the Poisson level, dispersion ≈ 1, and\n\
         rate ≈ λ̄ = 0.5 until the batch starves (rising N_v at extreme skew)."
    );

    // ---- E1b: estimator ablation ----------------------------------------
    // The paper prescribes MLE (batch) and SGD (sliding window); the
    // histogram estimator is the nonparametric alternative. Two workloads:
    // a linear gradient (Eq. (1)'s home turf) and a central hotspot that no
    // plane can represent.
    let mut ablation = Table::new(["workload", "estimator", "out χ² p", "out CV", "out rate"]);
    let workloads: Vec<(&str, Box<dyn craqr_mdpp::intensity::IntensityModel>)> = vec![
        ("linear gradient", Box::new(LinearIntensity::new([0.3, 0.0, 0.7, 0.0]))),
        (
            "central hotspot",
            Box::new(craqr_mdpp::intensity::GaussianBumpIntensity::new(
                0.3,
                vec![craqr_mdpp::intensity::Bump { cx: 5.0, cy: 5.0, amplitude: 8.0, sigma: 1.2 }],
            )),
        ),
    ];
    for (name, truth) in workloads {
        let raw = {
            struct Wrap<'a>(&'a dyn craqr_mdpp::intensity::IntensityModel);
            impl craqr_mdpp::intensity::IntensityModel for Wrap<'_> {
                fn rate_at(&self, p: &craqr_geom::SpaceTimePoint) -> f64 {
                    self.0.rate_at(p)
                }
                fn max_rate(&self, w: &SpaceTimeWindow) -> f64 {
                    self.0.max_rate(w)
                }
            }
            InhomogeneousMdpp::new(Wrap(truth.as_ref()), cell).sample(&window, &mut seeded_rng(7))
        };
        let modes: Vec<(&str, EstimatorMode)> = vec![
            ("batch MLE", EstimatorMode::BatchMle),
            ("SGD", EstimatorMode::Sgd(Default::default())),
            ("histogram 5×5", EstimatorMode::Histogram { bins: 5 }),
        ];
        for (mode_name, mode) in modes {
            let (mut op, _) = FlattenOp::new(FlattenConfig {
                cell,
                batch_duration: 10.0,
                target_rate: 0.4,
                mode,
                seed: 7,
            });
            // SGD is an *online* estimator: give it the warm-up stream its
            // sliding-window deployment would have seen (discarded output).
            if matches!(mode, EstimatorMode::Sgd(_)) {
                let mut warm_rng = seeded_rng(8);
                struct Wrap2<'a>(&'a dyn craqr_mdpp::intensity::IntensityModel);
                impl craqr_mdpp::intensity::IntensityModel for Wrap2<'_> {
                    fn rate_at(&self, p: &craqr_geom::SpaceTimePoint) -> f64 {
                        self.0.rate_at(p)
                    }
                    fn max_rate(&self, w: &SpaceTimeWindow) -> f64 {
                        self.0.max_rate(w)
                    }
                }
                let warm_process = InhomogeneousMdpp::new(Wrap2(truth.as_ref()), cell);
                for b in 0..150 {
                    let w = SpaceTimeWindow::new(cell, b as f64 * 10.0, (b + 1) as f64 * 10.0);
                    let pts = warm_process.sample(&w, &mut warm_rng);
                    let mut em = Emitter::new(op.output_ports());
                    op.process(InputPort(0), &tuples_from_points(&pts, AttributeId(0)), &mut em);
                }
            }
            let mut em = Emitter::new(op.output_ports());
            op.process(InputPort(0), &tuples_from_points(&raw, AttributeId(0)), &mut em);
            let out = em.into_buffers().remove(0);
            let out_points: Vec<_> = out.iter().map(|t| t.point).collect();
            let rep = homogeneity_report(&out_points, &window, 4, 2);
            ablation.row([
                name.to_string(),
                mode_name.to_string(),
                format!("{:.1e}", rep.chi_square.p_value),
                f3(rep.count_cv),
                f3(rep.empirical_rate),
            ]);
        }
    }
    ablation.print("E1b: estimator ablation (λ̄ = 0.4)");
    println!(
        "\nreading: on the linear gradient all three estimators flatten well (Eq. (1) is\n\
         correct there); on the hotspot the plane-based estimators cannot represent the\n\
         skew and leave it in the output, while the histogram estimator removes it —\n\
         the price of the paper's parametric Eq. (1) choice."
    );
}
