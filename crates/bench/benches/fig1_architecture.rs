//! Fig. 1 — the CrAQR architecture, exercised end to end.
//!
//! The figure shows queries entering the crowdsensed stream fabricator,
//! the request/response handler talking to mobile sensors `s1…s5`, and
//! acquired crowdsensed streams flowing back out. This bench runs that loop
//! and prints the epoch-by-epoch life of the system so every box in the
//! figure is visibly doing its job: requests out, responses in, tuples
//! flattened/thinned, streams delivered, budgets tuned.

use craqr_bench::{f3, preamble, Table};
use craqr_core::{CraqrServer, ServerConfig};
use craqr_geom::Rect;
use craqr_sensing::{
    Crowd, CrowdConfig, Mobility, Placement, PopulationConfig, RainFront, TemperatureField,
};

fn main() {
    preamble(
        "Fig. 1 (architecture)",
        "query input → fabricator → request/response handler → crowd → acquired MCDS",
        "4×4 km city crowd (1000 sensors, 40% human), rain + temp queries, 16 epochs",
    );

    let region = Rect::with_size(4.0, 4.0);
    let crowd = Crowd::new(CrowdConfig {
        region,
        population: PopulationConfig {
            size: 1_000,
            placement: Placement::city(&region),
            mobility: Mobility::random_waypoint(0.08, 5.0),
            human_fraction: 0.4,
        },
        seed: 1,
    });
    let mut server = CraqrServer::new(crowd, ServerConfig::default());
    server.register_attribute("rain", true, Box::new(RainFront::new(0.0, 0.03, 2.0)));
    server.register_attribute("temp", false, Box::new(TemperatureField::city_default()));

    let rain = server.submit("ACQUIRE rain FROM RECT(0, 0, 4, 4) RATE 0.1").unwrap();
    let temp = server.submit("ACQUIRE temp FROM RECT(1, 1, 3, 3) RATE 0.4").unwrap();

    println!("\nmaterialized execution topologies (the hashmap of Fig. 2):");
    print!("{}", server.fabricator().explain());

    let mut table = Table::new([
        "epoch",
        "requests sent",
        "responses",
        "ingested",
        "rain delivered",
        "temp delivered",
        "mean N_v %",
    ]);
    for _ in 0..16 {
        let r = server.run_epoch();
        let rain_n = r.delivered.iter().find(|(q, _)| *q == rain).map_or(0, |(_, n)| *n);
        let temp_n = r.delivered.iter().find(|(q, _)| *q == temp).map_or(0, |(_, n)| *n);
        let nvs: Vec<f64> = server
            .fabricator()
            .flatten_reports()
            .iter()
            .filter_map(|(_, _, rep, _)| rep.smoothed_nv())
            .collect();
        let mean_nv = nvs.iter().sum::<f64>() / nvs.len().max(1) as f64;
        table.row([
            r.epoch.to_string(),
            r.dispatch.sent.to_string(),
            r.responses.to_string(),
            r.ingested.to_string(),
            rain_n.to_string(),
            temp_n.to_string(),
            f3(mean_nv),
        ]);
    }
    table.print("Fig. 1: one epoch per row through the whole architecture");

    let minutes = server.now();
    let rain_out = server.take_output(rain).len() as f64 / (16.0 * minutes);
    let temp_out = server.take_output(temp).len() as f64 / (4.0 * minutes);
    println!("\nachieved rates: rain {rain_out:.3} (req 0.1), temp {temp_out:.3} (req 0.4)");
}
