//! E16 — telemetry overhead on the epoch loop.
//!
//! Claim under test: full instrumentation — the metrics collector, the
//! per-phase epoch timer, the engine's per-operator clock, and the timed
//! control-hook wrapper — costs < 2% epoch time. Event metrics are a
//! handful of hashmap increments per epoch against counters the loop
//! already computed, and the timing tier adds a bounded number of
//! thread-CPU clock reads per epoch, so always-on collection is
//! effectively free.
//!
//! Method: a variation of E15's paired design. One scenario runs twice
//! per repetition — once uninstrumented (`run_full`) and once with the
//! full stack on (`run_full_instrumented`), in alternating order, each
//! timed with **thread-CPU time** (immune to descheduling on busy
//! hosts). The gated overhead is the **ratio of the per-config minima**
//! over an even number of alternating-order repetitions: CPU-time noise
//! is additive-positive (interrupts, container siblings, accounting
//! jitter), so the minimum converges on the true cost as repetitions
//! grow, while medians still carry a position-in-pair bias that at a 2%
//! threshold is larger than the effect under test — which is why E15's
//! median-of-paired-ratios is not reused here. Medians are reported
//! alongside for context. Every pair also asserts the byte-inertness
//! contract — both runs must produce the identical canonical report.
//! The full run writes `BENCH_telemetry.json` for the CI
//! `bench-regression` job and gates at 2%. `--test` is the smoke pass:
//! fewer repetitions, the same inertness assertions, a relaxed 10%
//! gross-regression gate (six minima on a loaded CI host have not
//! converged enough for a 2% threshold), and no JSON write (the
//! committed artifact always comes from a full run).

use craqr_core::exec::{thread_busy_ns, ExecMode};
use craqr_scenario::{ScenarioRunner, ScenarioSpec};

const SPEC: &str = r#"
name = "e16_overhead"
description = "busy epoch loop for telemetry-overhead measurement"
seed = 1600
epochs = 80

[grid]
size_km = 6.0
side = 6

[population]
size = 3000
human_fraction = 0.1
placement = { kind = "city" }
mobility = { kind = "waypoint", speed = 0.08, pause = 5.0 }

[[attributes]]
name = "temp"
field = { kind = "temperature", base = 20.0, y_gradient = -0.15, islands = [[2.0, 2.0, 5.0, 1.0]], diurnal_amplitude = 4.0, diurnal_period = 1440.0 }

[[queries]]
text = "ACQUIRE temp FROM RECT(0,0,6,6) RATE 0.4"

[[queries]]
text = "ACQUIRE temp FROM RECT(0,0,3,3) RATE 0.9"

[[queries]]
text = "ACQUIRE temp FROM RECT(3,3,6,6) RATE 0.6"

[adaptive]
enabled = true
detector = "cusum"
slack = 0.5
threshold = 8.0
warmup_epochs = 3
cooldown_epochs = 4
"#;

fn main() {
    // Even rep counts only: alternating order must place each config in
    // each pair position the same number of times for bias to cancel.
    let test_mode = std::env::args().any(|a| a == "--test");
    let reps = if test_mode { 6 } else { 16 };

    craqr_bench::preamble(
        "E16",
        "full instrumentation costs <2% epoch time and never changes a report",
        "one scenario, plain vs fully instrumented, best-of-reps CPU-time ratio",
    );

    let spec = ScenarioSpec::from_toml(SPEC).expect("bench spec is valid");
    let runner = ScenarioRunner::new(spec).expect("bench spec runs");

    // Warm caches/allocator before timing anything.
    let _ = runner.run_full(ExecMode::Serial, 1600).expect("warmup");
    let _ = runner.run_full_instrumented(ExecMode::Serial, 1600).expect("warmup");

    // Per rep: time both configs back-to-back with thread-CPU time,
    // alternating the order; the gate reads the ratio of the two
    // per-config minima (see the module docs for why not paired ratios).
    let mut plain_secs = Vec::with_capacity(reps);
    let mut timed_secs = Vec::with_capacity(reps);
    let mut delivered = 0usize;
    let mut event_lines = 0usize;
    for rep in 0..reps {
        let time_plain = || {
            let t = thread_busy_ns();
            let out = runner.run_full(ExecMode::Serial, 1600).expect("plain run");
            (out, thread_busy_ns().saturating_sub(t) as f64 * 1e-9)
        };
        let time_timed = || {
            let t = thread_busy_ns();
            let out = runner.run_full_instrumented(ExecMode::Serial, 1600).expect("timed run");
            (out, thread_busy_ns().saturating_sub(t) as f64 * 1e-9)
        };
        let ((plain, p_secs), (timed, t_secs)) = if rep % 2 == 0 {
            let p = time_plain();
            (p, time_timed())
        } else {
            let t = time_timed();
            (time_plain(), t)
        };
        plain_secs.push(p_secs);
        timed_secs.push(t_secs);

        // The byte-inertness contract, asserted on every pair: the
        // instrumented run's canonical report is bit-identical.
        assert_eq!(
            plain.report.canonical(),
            timed.report.canonical(),
            "instrumentation perturbed the canonical report"
        );
        delivered = plain.report.queries.iter().map(|q| q.delivered).sum();
        let registry = timed.telemetry.expect("instrumented run has a registry");
        event_lines = registry.section().events.lines().count();
        assert!(event_lines > 0, "the collector recorded nothing");
    }

    fn median(samples: &mut [f64]) -> f64 {
        samples.sort_by(f64::total_cmp);
        (samples[(samples.len() - 1) / 2] + samples[samples.len() / 2]) / 2.0
    }
    let plain_med = median(&mut plain_secs);
    let timed_med = median(&mut timed_secs);
    let plain_best = plain_secs[0];
    let timed_best = timed_secs[0];
    let overhead_pct = (timed_best / plain_best - 1.0) * 100.0;
    let mut table = craqr_bench::Table::new([
        "config",
        "median cpu s",
        "best cpu s",
        "epochs/s",
        "delivered",
        "event lines",
    ]);
    let epochs = 80.0;
    table.row([
        "plain".to_string(),
        craqr_bench::f3(plain_med),
        craqr_bench::f3(plain_best),
        craqr_bench::f1(epochs / plain_med),
        delivered.to_string(),
        "-".to_string(),
    ]);
    table.row([
        "instrumented".to_string(),
        craqr_bench::f3(timed_med),
        craqr_bench::f3(timed_best),
        craqr_bench::f1(epochs / timed_med),
        delivered.to_string(),
        event_lines.to_string(),
    ]);
    let gate_pct = if test_mode { 10.0 } else { 2.0 };
    table.print("E16: telemetry overhead per run (Serial, thread-CPU time)");
    println!("\ntelemetry overhead: {overhead_pct:.2}% (gate: < {gate_pct}%)");

    if !test_mode {
        let json = format!(
            "{{\n  \"bench\": \"e16_telemetry\",\n  \"epochs\": 80,\n  \"reps\": {reps},\n  \
             \"plain_median_s\": {plain_med:.6},\n  \"instrumented_median_s\": {timed_med:.6},\n  \
             \"plain_best_s\": {plain_best:.6},\n  \"instrumented_best_s\": {timed_best:.6},\n  \
             \"overhead_pct\": {overhead_pct:.3},\n  \"event_lines\": {event_lines},\n  \
             \"note\": \"overhead_pct = ratio of per-config minimum thread-CPU times over alternating-order reps (minimum converges on true cost under additive-positive noise); gate asserts < 2% with the full stack on\"\n}}\n"
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
        std::fs::write(path, &json).expect("write BENCH_telemetry.json");
        println!("wrote {path}");
    }

    assert!(
        overhead_pct < gate_pct,
        "telemetry overhead {overhead_pct:.2}% exceeds the {gate_pct}% budget \
         (best plain {plain_best:.4}s vs instrumented {timed_best:.4}s; \
         medians {plain_med:.4}s vs {timed_med:.4}s)"
    );
}
