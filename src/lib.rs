//! # CrAQR — reproduction of *"On Crowdsensed Data Acquisition using
//! Multi-Dimensional Point Processes"* (ICDE Workshops 2015)
//!
//! This meta-crate re-exports the whole workspace behind one dependency:
//!
//! - [`geom`] — points, rectangles, the `√h × √h` grid, region algebra.
//! - [`stats`] — distributions, hypothesis tests, online estimators.
//! - [`mdpp`] — multi-dimensional point processes: models, samplers,
//!   MLE/SGD inference, homogeneity diagnostics.
//! - [`sensing`] — the simulated mobile crowd: mobility, ground-truth
//!   fields, response behaviour, transport.
//! - [`engine`] — the streaming dataflow engine PMAT operators run on.
//! - [`core`] — CrAQR itself: PMAT operators, acquisitional queries, the
//!   Section V planner, budget tuning, and the server.
//! - [`adaptive`] — the closed-loop acquisition controller: per-query
//!   online SGD estimation, drift detection on the innovation stream, and
//!   water-filled budget replanning through the epoch loop's
//!   [`ControlHook`](craqr_core::ControlHook) seam, all recorded in a
//!   canonical checksummed trace.
//! - [`scenario`] — the declarative scenario harness: TOML/JSON workload
//!   specs (including `[[shifts]]` regime changes and the `[adaptive]`
//!   block), a deterministic runner, and canonical golden reports
//!   (`scenarios/` + `tests/goldens/` + the `craqr-scenario` CLI).
//! - [`telemetry`] — the two-tier metrics registry: deterministic
//!   event-derived counters (checksummed into scenario reports) and
//!   clock-derived timings (Prometheus export only), with an exposition
//!   linter.
//!
//! ## Quickstart
//!
//! ```
//! use craqr::prelude::*;
//!
//! // A 4×4 km city with 500 wandering sensors.
//! let region = Rect::with_size(4.0, 4.0);
//! let crowd = Crowd::new(CrowdConfig {
//!     region,
//!     population: PopulationConfig::city_default(&region),
//!     seed: 7,
//! });
//! let mut server = CraqrServer::new(crowd, ServerConfig::default());
//! server.register_attribute("temp", false, Box::new(TemperatureField::city_default()));
//!
//! // The paper's declarative query shape.
//! let q = server.submit("ACQUIRE temp FROM RECT(0, 0, 2, 2) RATE 0.5 PER KM2 PER MIN").unwrap();
//! for _ in 0..6 {
//!     server.run_epoch();
//! }
//! let stream = server.take_output(q);
//! // The fabricated stream is time-ordered and confined to the query region.
//! assert!(stream.windows(2).all(|w| w[0].point.t <= w[1].point.t));
//! assert!(stream.iter().all(|t| t.point.x < 2.0 && t.point.y < 2.0));
//! ```
//!
//! ## Execution model: serial vs. sharded epochs
//!
//! The per-cell operator topologies share nothing — each `(cell,
//! attribute)` chain owns its operators, sinks, and RNG streams, all
//! derived from the planner's root seed. [`ServerConfig`](craqr_core::ServerConfig)'s
//! [`ExecMode`](craqr_core::ExecMode) knob chooses how the epoch's process phase runs:
//!
//! - [`ExecMode::Serial`](craqr_core::ExecMode::Serial) (default): every chain runs on the calling
//!   thread in sorted key order — the reference implementation, easiest
//!   to step through and profile.
//! - [`ExecMode::Sharded`](craqr_core::ExecMode::Sharded)`(n)`: chains are partitioned round-robin over
//!   sorted keys into `n` shards, each run on a scoped worker thread;
//!   per-shard results merge in ascending shard order.
//!
//! **Determinism contract:** for a fixed root seed, both modes produce
//! bit-identical fabricated streams, dispatch statistics, and budget
//! decisions, for every `n` (enforced by `tests/sharded_exec.rs`).
//! Pick `Sharded(n ≈ available cores)` when many cells are materialized
//! and batches are large (the `e13_parallel` bench measures the scaling);
//! stay `Serial` for small grids, debugging, or single-core hosts where
//! worker threads only add overhead.
//!
//! ```
//! use craqr::prelude::*;
//!
//! let config = ServerConfig { exec: ExecMode::Sharded(4), ..ServerConfig::default() };
//! # let _ = config;
//! ```

pub use craqr_adaptive as adaptive;
pub use craqr_core as core;
pub use craqr_engine as engine;
pub use craqr_geom as geom;
pub use craqr_mdpp as mdpp;
pub use craqr_runlog as runlog;
pub use craqr_scenario as scenario;
pub use craqr_sensing as sensing;
pub use craqr_stats as stats;
pub use craqr_telemetry as telemetry;

/// The names almost every CrAQR program needs.
pub mod prelude {
    pub use craqr_adaptive::{AdaptiveConfig, AdaptiveController, AdaptiveTrace};
    pub use craqr_core::{
        AcquisitionQuery, AttributeCatalog, Budget, BudgetTuner, ControlAction, ControlHook,
        CraqrServer, CrowdTuple, EpochObservation, EpochReport, ErrorModel, ExecMode, Fabricator,
        FlattenOp, IncentivePolicy, IngestReport, Mitigation, PartitionOp, PlannerConfig, QueryId,
        RateMeterOp, ServerConfig, ShardIngest, SuperposeOp, ThinOp, TopologyShape, UnionOp,
    };
    pub use craqr_geom::{CellId, Grid, Rect, Region, SpaceTimePoint, SpaceTimeWindow};
    pub use craqr_mdpp::{
        fit_mle, homogeneity_report, HomogeneousMdpp, InhomogeneousMdpp, IntensityModel,
        LinearIntensity,
    };
    pub use craqr_sensing::{
        AttrValue, AttributeId, Crowd, CrowdConfig, Mobility, Placement, PopulationConfig,
        RainFront, ResponseModel, SensorId, TemperatureField,
    };
    pub use craqr_stats::seeded_rng;
}
