//! `craqr-scenario` — run declarative scenario specs, manage goldens, and
//! work with event-sourced run logs.
//!
//! ```text
//! # Run every committed scenario and diff against the committed goldens:
//! cargo run --release --bin craqr-scenario -- --all scenarios --check
//!
//! # Regenerate the goldens after an intentional behaviour change
//! # (adaptive scenarios also re-bless their .trace.txt goldens, [runlog]
//! # scenarios their .runlog.txt goldens; stale/orphaned goldens of every
//! # kind are swept away):
//! cargo run --release --bin craqr-scenario -- --all scenarios --bless
//!
//! # Event-source a run, then replay/audit it offline:
//! cargo run --release --bin craqr-scenario -- record --all scenarios --out runs
//! cargo run --release --bin craqr-scenario -- replay runs/*.runlog.txt
//! cargo run --release --bin craqr-scenario -- replay runs/*.runlog.txt --shards 4
//! cargo run --release --bin craqr-scenario -- resume runs/drift_rate_jump.runlog.txt --at 9
//! cargo run --release --bin craqr-scenario -- diff runs/a.runlog.txt runs/b.runlog.txt
//! ```
//!
//! # Subcommands
//!
//! | subcommand | meaning |
//! |---|---|
//! | `record <specs…> [--all DIR] [--shards N] [--seed S] [--out DIR]` | run each spec live with run-log recording forced on; write `<out>/<name>.runlog.txt` (default `runs/`) |
//! | `replay <logs…> [--shards N]` | re-drive each log with the crowd detached; verify the regenerated inputs, decisions, and sealed report/trace checksums byte-for-byte |
//! | `resume <log> --at K [--shards N]` | rebuild epochs `0..K` (verified against the log record-by-record), continue live to the horizon, verify the run re-converges on the sealed checksums |
//! | `diff <a> <b>` | structural epoch-by-epoch comparison of two logs with first-divergence reporting; exit 1 when they differ |
//! | `salvage <log> [--out FILE] [--resume] [--shards N]` | verify a possibly-torn log: keep the longest valid checksummed prefix, report the tear, optionally rewrite the salvaged prefix (`--out`) and/or resume it live to the horizon (`--resume`) |
//! | `chaos <specs…> [--all DIR] [--shards N] [--out DIR]` | kill-matrix drill: for every crash point × epoch (or just the spec's `[[faults.crash]]` list when present), stream the run to the crash, salvage the torn file, resume it, and assert the recovery re-converges byte-for-byte on an uninterrupted reference run |
//! | `metrics <logs…> [--shards N] [--out FILE]` | replay each committed log with the crowd detached and full instrumentation, merge the registries, and render the Prometheus exposition (to `--out`, linted, or stdout) |
//!
//! # Metrics (`--metrics FILE`)
//!
//! The golden mode plus the `record` and `chaos` subcommands accept
//! `--metrics FILE`: the run is instrumented (clock-derived tier
//! included), every scenario's registry is merged, and the merged
//! Prometheus exposition is linted and written to `FILE`. Instrumentation
//! is byte-inert — reports, traces, and run logs are bit-identical with
//! and without `--metrics` (the built-in cross-mode check compares an
//! instrumented run against an uninstrumented one on every `--metrics`
//! invocation, so the inertness contract is verified each time).
//!
//! # Exit codes
//!
//! | code | meaning |
//! |---|---|
//! | 0 | success (`salvage`: the log was fully intact) |
//! | 1 | generic failure: bad flags, run error, replay divergence, golden mismatch, chaos failure |
//! | 2 | **corrupt** log: not even a checksummed prefix could be salvaged (header damage) |
//! | 3 | **torn** log: a valid checksummed prefix was salvaged, but the tail was lost |
//!
//! Every log-loading subcommand distinguishes 2 from 3, so CI and
//! operators can tell "restore from backup" apart from "salvage and
//! resume" without reading the log.
//!
//! # Golden-corpus flags (no subcommand)
//!
//! | flag | default | meaning |
//! |---|---|---|
//! | `<files…>`       | —              | scenario spec files (`.toml` or `.json`) |
//! | `--all DIR`      | —              | append every spec in `DIR` (sorted) to the file list |
//! | `--shards N`     | serial         | run under `Sharded(N)`, `N >= 1` (`0` is rejected: it has no workers) |
//! | `--seed S`       | spec seed      | override every spec's seed |
//! | `--goldens DIR`  | `tests/goldens`| where golden reports live |
//! | `--bless`        | off            | write/overwrite golden files, sweeping stale and orphaned ones |
//! | `--check`        | off            | diff reports against goldens, exit 1 on mismatch or orphaned golden |
//! | `--checksum`     | off            | print only `name checksum` lines |
//! | `--print`        | off            | print each canonical report to stdout |
//! | `--trace`        | off            | print each adaptive trace to stdout |
//! | `--metrics FILE` | off            | instrument every run, write the merged Prometheus exposition to `FILE` |
//! | `--pipeline`     | off            | run on the staged four-thread executor; goldens are still checked (and only ever blessed) from serial bytes |
//!
//! Without `--bless`/`--check`/`--checksum`/`--print`, a one-line summary
//! per scenario is printed. Every run additionally executes the spec under
//! the *other* execution mode and asserts the two canonical reports (and
//! traces, and run logs) are byte-identical — the determinism contract is
//! checked on every invocation, not just in CI. Exceptions: `--checksum`
//! skips the built-in cross-run (that mode exists for *external*
//! serial-vs-sharded diffs, as CI does), and `--bless --seed` is rejected
//! (it would write goldens no `--check` could ever match).
//!
//! With `--bless`/`--check` plus `--all`, goldens are also swept for
//! *orphans*: a `<stem>.golden.txt`/`.trace.txt`/`.runlog.txt` whose
//! scenario no longer exists in the corpus is deleted by `--bless` and
//! fails `--check` — renaming or deleting a spec can no longer leave a
//! silently-unchecked golden behind.

use craqr::core::{CrashPoint, ExecMode};
use craqr::runlog::{diff_logs, parse_salvage, write_atomic, RunLog};
use craqr::scenario::{
    replay, replay_instrumented, resume, scenario_files, RunTelemetry, ScenarioRunner, ScenarioSpec,
};
use craqr::telemetry::lint_exposition;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Exit code for a log whose header is damaged beyond salvage.
const EXIT_CORRUPT: u8 = 2;
/// Exit code for a log with a valid salvageable prefix and a lost tail.
const EXIT_TORN: u8 = 3;

/// A command failure carrying its exit code: 1 generic, 2 corrupt log,
/// 3 torn log.
struct Failure {
    code: u8,
    message: String,
}

impl From<String> for Failure {
    fn from(message: String) -> Self {
        Failure { code: 1, message }
    }
}

impl From<&str> for Failure {
    fn from(message: &str) -> Self {
        Failure { code: 1, message: message.into() }
    }
}

/// Parses a `--shards` value: `N >= 1` shards (serial is the absence of
/// the flag, not shard count zero).
fn parse_shards(value: &str) -> Result<usize, String> {
    let n: usize = value.parse().map_err(|e| format!("--shards: {e}"))?;
    if n == 0 {
        return Err(
            "--shards 0 has no workers to run on; use N >= 1, or omit the flag for serial".into()
        );
    }
    Ok(n)
}

fn exec_of(shards: Option<usize>) -> ExecMode {
    match shards {
        Some(n) => ExecMode::Sharded(n),
        None => ExecMode::Serial,
    }
}

fn load_runner(path: &Path) -> Result<ScenarioRunner, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let spec = ScenarioSpec::from_source(&path.to_string_lossy(), &src)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    ScenarioRunner::new(spec).map_err(|e| format!("{}: {e}", path.display()))
}

/// Loads a log, classifying parse failures: a file whose tail is torn but
/// whose prefix salvages exits 3 (recoverable — run `salvage`), a file
/// that cannot even be salvaged exits 2 (corrupt — restore from backup).
fn load_log(path: &Path) -> Result<RunLog, Failure> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    match RunLog::parse(&src) {
        Ok(log) => Ok(log),
        Err(parse_err) => match parse_salvage(&src) {
            Ok(salvage) => Err(Failure {
                code: EXIT_TORN,
                message: format!(
                    "{}: torn log ({parse_err}); {} epoch(s) salvage cleanly — \
                     run `craqr-scenario salvage {}` to recover",
                    path.display(),
                    salvage.log.epochs.len(),
                    path.display(),
                ),
            }),
            Err(salvage_err) => Err(Failure {
                code: EXIT_CORRUPT,
                message: format!(
                    "{}: corrupt log, nothing salvageable: {salvage_err}",
                    path.display()
                ),
            }),
        },
    }
}

// ---------------------------------------------------------------------------
// Metrics export
// ---------------------------------------------------------------------------

/// Folds one run's registry into the cross-scenario accumulator
/// (registry merge is commutative, so aggregation order is irrelevant).
fn absorb_metrics(acc: &mut Option<RunTelemetry>, run: Option<&RunTelemetry>) {
    if let Some(run) = run {
        match acc {
            Some(a) => a.absorb(run),
            None => *acc = Some(run.clone()),
        }
    }
}

/// Lints and atomically writes one Prometheus exposition to `path` —
/// `--metrics` output is held to the same format bar CI enforces, at the
/// moment it is produced.
fn write_metrics(path: &Path, telemetry: Option<&RunTelemetry>) -> Result<(), String> {
    let text = telemetry.map(RunTelemetry::render_prometheus).unwrap_or_default();
    if let Err(errors) = lint_exposition(&text) {
        let mut msg = format!("{}: exposition failed lint:", path.display());
        for e in &errors {
            msg.push_str(&format!("\n  {e}"));
        }
        return Err(msg);
    }
    write_atomic(path, &text).map_err(|e| format!("{}: {e}", path.display()))?;
    println!("wrote metrics to {} ({} bytes, lint clean)", path.display(), text.len());
    Ok(())
}

// ---------------------------------------------------------------------------
// record / replay / resume / diff subcommands
// ---------------------------------------------------------------------------

fn cmd_record(argv: &[String]) -> Result<(), Failure> {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut shards = None;
    let mut seed: Option<u64> = None;
    let mut out = PathBuf::from("runs");
    let mut metrics: Option<PathBuf> = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("flag {name} needs a value"));
        match flag.as_str() {
            "--shards" => shards = Some(parse_shards(&value("--shards")?)?),
            "--seed" => seed = Some(value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?),
            "--out" => out = PathBuf::from(value("--out")?),
            "--metrics" => metrics = Some(PathBuf::from(value("--metrics")?)),
            "--all" => {
                let dir = PathBuf::from(value("--all")?);
                files.extend(scenario_files(&dir).map_err(|e| e.to_string())?);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'").into())
            }
            file => files.push(PathBuf::from(file)),
        }
    }
    if files.is_empty() {
        return Err("record: at least one spec file (or --all DIR) is required".into());
    }
    std::fs::create_dir_all(&out).map_err(|e| format!("{}: {e}", out.display()))?;
    let mut registry: Option<RunTelemetry> = None;
    for file in &files {
        let runner = load_runner(file)?;
        let run_seed = seed.unwrap_or(runner.spec().seed);
        // Crash-safe recording: every sealed epoch block is appended and
        // fsynced as it closes, and the sealed document atomically
        // replaces the streamed prefix at the end — a kill at any moment
        // leaves a salvageable prefix, never a half-written file.
        let path = out.join(format!("{}.runlog.txt", runner.spec().name));
        let output = runner
            .run_streamed_instrumented(exec_of(shards), run_seed, &path, metrics.is_some())
            .map_err(|e| format!("{}: {e}", file.display()))?;
        absorb_metrics(&mut registry, output.telemetry.as_ref());
        // craqr-lint: allow(W1): internal invariant — the streamed-record API always yields a log
        let log = output.log.expect("run_streamed always returns a log");
        let text = log.canonical();
        // The checksum is already the canonical text's last line; reading
        // it there avoids re-rendering the whole multi-hundred-KB log.
        let checksum = text
            .lines()
            .last()
            .and_then(|l| l.strip_prefix("checksum: "))
            // craqr-lint: allow(W1): internal invariant — canonical() always ends with a checksum line
            .expect("canonical logs end in a checksum line");
        println!(
            "recorded {} ({} epochs, {} responses, {} bytes, checksum {checksum})",
            path.display(),
            log.epochs.len(),
            log.epochs.iter().map(|e| e.responses.len()).sum::<usize>(),
            text.len(),
        );
    }
    if let Some(path) = &metrics {
        write_metrics(path, registry.as_ref())?;
    }
    Ok(())
}

/// `metrics <logs…> [--shards N] [--out FILE]` — detached-replay each
/// committed log with full instrumentation, merge the registries, render
/// the Prometheus exposition.
fn cmd_metrics(argv: &[String]) -> Result<(), Failure> {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut shards = None;
    let mut out: Option<PathBuf> = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--shards" => {
                let v = it.next().ok_or("flag --shards needs a value")?;
                shards = Some(parse_shards(v)?);
            }
            "--out" => {
                let v = it.next().ok_or("flag --out needs a value")?;
                out = Some(PathBuf::from(v));
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'").into())
            }
            file => files.push(PathBuf::from(file)),
        }
    }
    if files.is_empty() {
        return Err("metrics: at least one .runlog.txt file is required".into());
    }
    let exec = exec_of(shards);
    let mut registry: Option<RunTelemetry> = None;
    for file in &files {
        let log = load_log(file)?;
        let output = replay_instrumented(&log, exec, true)
            .map_err(|e| format!("{}: {e}", file.display()))?;
        eprintln!(
            "replayed {} [{exec:?}] events-checksum {:#018x}",
            output.report.name,
            output.telemetry.as_ref().map_or(0, |t| t.section().events_checksum),
        );
        absorb_metrics(&mut registry, output.telemetry.as_ref());
    }
    match &out {
        Some(path) => write_metrics(path, registry.as_ref())?,
        None => {
            print!("{}", registry.as_ref().map(RunTelemetry::render_prometheus).unwrap_or_default())
        }
    }
    Ok(())
}

fn cmd_replay(argv: &[String]) -> Result<(), Failure> {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut shards = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--shards" => {
                let v = it.next().ok_or("flag --shards needs a value")?;
                shards = Some(parse_shards(v)?);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'").into())
            }
            file => files.push(PathBuf::from(file)),
        }
    }
    if files.is_empty() {
        return Err("replay: at least one .runlog.txt file is required".into());
    }
    let exec = exec_of(shards);
    let mut failures = 0usize;
    let mut worst_code = 1u8;
    for file in &files {
        let result = load_log(file).and_then(|log| {
            replay(&log, exec).map_err(|e| Failure::from(format!("{}: {e}", file.display())))
        });
        match result {
            Ok(output) => println!(
                "ok {} [{exec:?}] report {:#018x} trace {}",
                output.report.name,
                output.report.checksum(),
                output.trace.map_or("-".to_string(), |t| format!("{:#018x}", t.checksum())),
            ),
            Err(f) => {
                eprintln!("REPLAY FAILED: {}", f.message);
                // A torn or corrupt input is more actionable than a
                // generic failure: surface the most specific code seen.
                worst_code = worst_code.max(f.code);
                failures += 1;
            }
        }
    }
    if failures > 0 {
        return Err(Failure { code: worst_code, message: format!("{failures} replay(s) failed") });
    }
    Ok(())
}

fn cmd_resume(argv: &[String]) -> Result<(), Failure> {
    let mut file: Option<PathBuf> = None;
    let mut shards = None;
    let mut at: Option<usize> = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--shards" => {
                let v = it.next().ok_or("flag --shards needs a value")?;
                shards = Some(parse_shards(v)?);
            }
            "--at" => {
                let v = it.next().ok_or("flag --at needs a value")?;
                at = Some(v.parse().map_err(|e| format!("--at: {e}"))?);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'").into())
            }
            f if file.is_none() => file = Some(PathBuf::from(f)),
            extra => {
                return Err(format!("resume takes exactly one log file, got also '{extra}'").into())
            }
        }
    }
    let file = file.ok_or("resume: a .runlog.txt file is required")?;
    let at = at.ok_or("resume: --at K (epoch boundary to resume from) is required")?;
    let log = load_log(&file)?;
    let output =
        resume(&log, exec_of(shards), at).map_err(|e| format!("{}: {e}", file.display()))?;
    println!(
        "resumed {} at epoch {at}: re-converged on report {:#018x} trace {}",
        output.report.name,
        output.report.checksum(),
        output.trace.map_or("-".to_string(), |t| format!("{:#018x}", t.checksum())),
    );
    Ok(())
}

fn cmd_diff(argv: &[String]) -> Result<bool, Failure> {
    let files: Vec<&String> = argv.iter().filter(|a| !a.starts_with("--")).collect();
    if files.len() != 2 || argv.len() != 2 {
        return Err("diff: exactly two .runlog.txt files are required".into());
    }
    let a = load_log(Path::new(files[0]))?;
    let b = load_log(Path::new(files[1]))?;
    let diff = diff_logs(&a, &b);
    if diff.identical() {
        println!("identical: {} == {}", files[0], files[1]);
        Ok(true)
    } else {
        print!("{}", diff.render());
        Ok(false)
    }
}

/// `salvage <log> [--out FILE] [--resume] [--shards N]` — verify a
/// possibly-torn log and keep the longest valid checksummed prefix.
///
/// Returns the exit code: 0 when the log was fully intact, [`EXIT_TORN`]
/// when a prefix salvaged but the tail was lost, or `Err` with
/// [`EXIT_CORRUPT`] when not even the header survived.
fn cmd_salvage(argv: &[String]) -> Result<u8, Failure> {
    let mut file: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut shards = None;
    let mut do_resume = false;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => {
                let v = it.next().ok_or("flag --out needs a value")?;
                out = Some(PathBuf::from(v));
            }
            "--shards" => {
                let v = it.next().ok_or("flag --shards needs a value")?;
                shards = Some(parse_shards(v)?);
            }
            "--resume" => do_resume = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'").into())
            }
            f if file.is_none() => file = Some(PathBuf::from(f)),
            extra => {
                return Err(format!("salvage takes exactly one log file, got also '{extra}'").into())
            }
        }
    }
    let file = file.ok_or("salvage: a .runlog.txt file is required")?;
    let src = std::fs::read_to_string(&file).map_err(|e| format!("{}: {e}", file.display()))?;
    let salvage = parse_salvage(&src).map_err(|e| Failure {
        code: EXIT_CORRUPT,
        message: format!("{}: corrupt log, nothing salvageable: {e}", file.display()),
    })?;
    let exit = match &salvage.torn {
        None => {
            println!(
                "intact {}: {} epoch(s), sealed {}",
                file.display(),
                salvage.log.epochs.len(),
                salvage
                    .log
                    .report_checksum
                    .map_or("(no report checksum)".to_string(), |c| format!("{c:#018x}")),
            );
            0
        }
        Some(torn) => {
            println!(
                "torn {}: kept {} epoch(s) / {} valid byte(s), discarded {} byte(s) \
                 from line {} ({})",
                file.display(),
                salvage.log.epochs.len(),
                torn.valid_bytes,
                torn.discarded_bytes,
                torn.line,
                torn.reason,
            );
            EXIT_TORN
        }
    };
    if let Some(out) = &out {
        // The salvaged prefix re-renders as a sealed document (header +
        // verified epochs + trailer), so the repaired file parses
        // cleanly — no salvage pass needed the next time it is read.
        write_atomic(out, &salvage.log.canonical())
            .map_err(|e| format!("{}: {e}", out.display()))?;
        println!("wrote salvaged log to {}", out.display());
    }
    if do_resume {
        let at = salvage.log.epochs.len();
        let output = resume(&salvage.log, exec_of(shards), at)
            .map_err(|e| format!("{}: {e}", file.display()))?;
        println!(
            "resumed {} at epoch {at}: report {:#018x} trace {}",
            output.report.name,
            output.report.checksum(),
            output.trace.map_or("-".to_string(), |t| format!("{:#018x}", t.checksum())),
        );
    }
    Ok(exit)
}

/// One spec's kill matrix: crash at every point of every epoch (or just
/// the spec's `[[faults.crash]]` list), salvage, resume, and require the
/// recovery to re-converge on the uninterrupted reference run.
fn chaos_one(
    file: &Path,
    shards: Option<usize>,
    out_dir: &Path,
    registry: &mut Option<RunTelemetry>,
) -> Result<(usize, usize), Failure> {
    let runner = load_runner(file)?;
    let spec = runner.spec();
    let exec = exec_of(shards);
    let seed = spec.seed;
    let name = spec.name.clone();
    let epochs = spec.epochs;

    // The uninterrupted reference: every recovery below must land on
    // exactly these checksums. Under --metrics it is instrumented — the
    // drill's exported registry describes the reference runs (recoveries
    // must converge on them anyway).
    let reference = if registry.is_some() {
        let r = runner
            .run_recorded_instrumented(exec, seed)
            .map_err(|e| format!("{}: {e}", file.display()))?;
        absorb_metrics(registry, r.telemetry.as_ref());
        r
    } else {
        runner.run_recorded(exec, seed).map_err(|e| format!("{}: {e}", file.display()))?
    };
    let want_report = reference.report.checksum();
    let want_trace = reference.trace.as_ref().map(|t| t.checksum());

    let matrix: Vec<(CrashPoint, u32)> = match spec.faults.as_ref().filter(|f| !f.crash.is_empty())
    {
        Some(f) => f
            .crash
            .iter()
            .map(|c| {
                let point = CrashPoint::from_name(&c.point)
                    // craqr-lint: allow(W1): internal invariant — spec validation already rejected unknown crash points
                    .expect("validated spec has only known crash points");
                (point, c.epoch)
            })
            .collect(),
        None => {
            (0..epochs).flat_map(|e| CrashPoint::ALL.into_iter().map(move |p| (p, e))).collect()
        }
    };

    let mut kills = 0usize;
    let mut failures = 0usize;
    for &(point, at_epoch) in &matrix {
        kills += 1;
        let crash_path = out_dir.join(format!("{name}.{}.e{at_epoch}.runlog.txt", point.name()));
        let mut fail = |why: String| {
            eprintln!(
                "CHAOS FAILED {name} @ {point} epoch {at_epoch}: {why} \
                 (salvage artifact kept at {})",
                crash_path.display()
            );
            failures += 1;
        };
        let durable = match runner.run_to_crash(exec, seed, point, at_epoch, &crash_path) {
            Ok(d) => d,
            Err(e) => {
                fail(format!("crash run: {e}"));
                continue;
            }
        };
        let src = match std::fs::read_to_string(&crash_path) {
            Ok(s) => s,
            Err(e) => {
                fail(format!("reading crash file: {e}"));
                continue;
            }
        };
        let salvage = match parse_salvage(&src) {
            Ok(s) => s,
            Err(e) => {
                fail(format!("salvage: {e}"));
                continue;
            }
        };
        if salvage.log.epochs.len() != durable {
            fail(format!(
                "salvaged {} epoch(s), but {durable} were durable at the kill",
                salvage.log.epochs.len()
            ));
            continue;
        }
        let recovered = match resume(&salvage.log, exec, durable) {
            Ok(o) => o,
            Err(e) => {
                fail(format!("resume: {e}"));
                continue;
            }
        };
        let got_trace = recovered.trace.as_ref().map(|t| t.checksum());
        if recovered.report.checksum() != want_report || got_trace != want_trace {
            fail(format!(
                "recovery diverged: report {:#018x} (want {want_report:#018x}), trace {:?} \
                 (want {want_trace:?})",
                recovered.report.checksum(),
                got_trace,
            ));
            continue;
        }
        // Conservation after recovery: the budget laws must hold for the
        // resumed run exactly as for an uninterrupted one.
        if let Some(tenants) = &recovered.report.tenants {
            for row in &tenants.rows {
                let eps = 1e-9;
                if row.peak_epoch_charge > row.capacity + eps
                    || row.committed > row.capacity + eps
                    || row.charged > row.capacity * f64::from(epochs) + eps
                {
                    fail(format!(
                        "tenant '{}' violates conservation after recovery: \
                         peak {} / committed {} / charged {} vs capacity {}",
                        row.name, row.peak_epoch_charge, row.committed, row.charged, row.capacity,
                    ));
                }
            }
        }
        // The drill passed: the torn artifact has served its purpose.
        let _ = std::fs::remove_file(&crash_path);
    }
    Ok((kills, failures))
}

/// `chaos <specs…> [--all DIR] [--shards N] [--out DIR]` — run the
/// kill-salvage-resume drill over each spec, in process.
fn cmd_chaos(argv: &[String]) -> Result<(), Failure> {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut shards = None;
    let mut out = PathBuf::from("runs/chaos");
    let mut metrics: Option<PathBuf> = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("flag {name} needs a value"));
        match flag.as_str() {
            "--shards" => shards = Some(parse_shards(&value("--shards")?)?),
            "--out" => out = PathBuf::from(value("--out")?),
            "--metrics" => metrics = Some(PathBuf::from(value("--metrics")?)),
            "--all" => {
                let dir = PathBuf::from(value("--all")?);
                files.extend(scenario_files(&dir).map_err(|e| e.to_string())?);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'").into())
            }
            file => files.push(PathBuf::from(file)),
        }
    }
    if files.is_empty() {
        return Err("chaos: at least one spec file (or --all DIR) is required".into());
    }
    std::fs::create_dir_all(&out).map_err(|e| format!("{}: {e}", out.display()))?;
    // A pre-seeded (empty) accumulator doubles as the "instrument the
    // reference runs" flag inside `chaos_one`.
    let mut registry: Option<RunTelemetry> = metrics.as_ref().map(|_| RunTelemetry::new(true));
    let mut total_failures = 0usize;
    for file in &files {
        let (kills, failures) = chaos_one(file, shards, &out, &mut registry)?;
        if failures == 0 {
            println!(
                "chaos ok {}: {kills} kill(s), every salvage+resume re-converged on the \
                 uninterrupted run",
                file.display()
            );
        }
        total_failures += failures;
    }
    if let Some(path) = &metrics {
        write_metrics(path, registry.as_ref())?;
    }
    if total_failures > 0 {
        return Err(format!(
            "{total_failures} chaos kill(s) failed to recover (salvage artifacts kept under {})",
            out.display()
        )
        .into());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Golden-corpus mode (no subcommand)
// ---------------------------------------------------------------------------

struct Args {
    files: Vec<PathBuf>,
    shards: Option<usize>,
    seed: Option<u64>,
    goldens: PathBuf,
    bless: bool,
    check: bool,
    checksum: bool,
    print: bool,
    trace: bool,
    /// `--metrics FILE`: instrument every run and write the merged
    /// Prometheus exposition here.
    metrics: Option<PathBuf>,
    /// `--pipeline`: drive each primary run on the pipelined executor.
    /// The built-in cross-run stays on the classic executor, so every
    /// invocation re-proves the pipelined bytes against serial ones.
    pipeline: bool,
    /// `--all` was used, so the file list is a complete corpus and the
    /// golden directory can be swept for orphans.
    swept: bool,
}

fn parse_args(argv: Vec<String>) -> Result<Args, String> {
    let mut args = Args {
        files: Vec::new(),
        shards: None,
        seed: None,
        goldens: PathBuf::from("tests/goldens"),
        bless: false,
        check: false,
        checksum: false,
        print: false,
        trace: false,
        metrics: None,
        pipeline: false,
        swept: false,
    };
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("flag {name} needs a value"));
        match flag.as_str() {
            "--shards" => args.shards = Some(parse_shards(&value("--shards")?)?),
            "--seed" => {
                args.seed = Some(value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?)
            }
            "--goldens" => args.goldens = PathBuf::from(value("--goldens")?),
            "--metrics" => args.metrics = Some(PathBuf::from(value("--metrics")?)),
            "--all" => {
                let dir = PathBuf::from(value("--all")?);
                let found = scenario_files(&dir).map_err(|e| e.to_string())?;
                if found.is_empty() {
                    return Err(format!("--all {}: no .toml/.json specs found", dir.display()));
                }
                args.files.extend(found);
                args.swept = true;
            }
            "--bless" => args.bless = true,
            "--check" => args.check = true,
            "--checksum" => args.checksum = true,
            "--print" => args.print = true,
            "--trace" => args.trace = true,
            "--pipeline" => args.pipeline = true,
            "--help" | "-h" => {
                println!("see the doc comment at the top of src/bin/craqr-scenario.rs for usage");
                std::process::exit(0);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}' (try --help)"))
            }
            file => args.files.push(PathBuf::from(file)),
        }
    }
    if args.files.is_empty() {
        return Err("at least one scenario spec file is required (try --help)".into());
    }
    if args.bless && args.check {
        return Err("--bless and --check are mutually exclusive".into());
    }
    if args.bless && args.pipeline {
        return Err("--bless --pipeline is refused: goldens are always blessed from serial runs \
             (pipelining must never be bless-relevant)"
            .into());
    }
    if args.metrics.is_some() && args.pipeline {
        return Err("--metrics and --pipeline are mutually exclusive".into());
    }
    if args.bless && args.seed.is_some() {
        return Err(
            "--bless with --seed would write goldens no --check or test run can ever match \
             (goldens are defined by each spec's own seed)"
                .into(),
        );
    }
    Ok(args)
}

/// One golden artifact kind a scenario may pin.
struct GoldenKind {
    suffix: &'static str,
    what: &'static str,
}

const GOLDEN_KINDS: [GoldenKind; 3] = [
    GoldenKind { suffix: ".golden.txt", what: "report" },
    GoldenKind { suffix: ".trace.txt", what: "adaptive trace" },
    GoldenKind { suffix: ".runlog.txt", what: "run log" },
];

/// Blesses or checks one golden artifact. `fresh` is `None` when the
/// scenario does not produce this kind (an existing file is then stale).
/// Returns `false` on a check failure.
fn golden_artifact(
    bless: bool,
    scenario: &str,
    what: &str,
    path: &Path,
    fresh: Option<&str>,
) -> Result<bool, String> {
    if bless {
        match fresh {
            Some(text) => {
                if let Some(parent) = path.parent() {
                    let _ = std::fs::create_dir_all(parent);
                }
                // Atomic: a kill mid-bless can never leave a truncated
                // golden that every later --check would chase.
                write_atomic(path, text).map_err(|e| format!("{}: {e}", path.display()))?;
                println!("blessed {}", path.display());
            }
            // The scenario stopped producing this artifact: a leftover
            // golden would rot unchecked, so blessing deletes it.
            None => {
                if path.exists() {
                    std::fs::remove_file(path).map_err(|e| format!("{}: {e}", path.display()))?;
                    println!("removed stale {}", path.display());
                }
            }
        }
        return Ok(true);
    }
    // --check
    match fresh {
        None if path.exists() => {
            eprintln!(
                "STALE {scenario}: {} exists but the scenario produces no {what} \
                 (re-bless to remove it)",
                path.display()
            );
            Ok(false)
        }
        None => Ok(true),
        Some(text) => match std::fs::read_to_string(path) {
            Ok(golden) if golden == text => Ok(true),
            Ok(golden) => {
                eprintln!(
                    "MISMATCH {scenario}: {what} differs from {} \
                     (run with --bless after verifying the change is intentional)",
                    path.display()
                );
                let (g_lines, r_lines): (Vec<&str>, Vec<&str>) =
                    (golden.lines().collect(), text.lines().collect());
                let diff_at = g_lines
                    .iter()
                    .zip(&r_lines)
                    .position(|(g, r)| g != r)
                    // One is a line-prefix of the other: the first diff is
                    // the first unmatched line.
                    .unwrap_or_else(|| g_lines.len().min(r_lines.len()));
                fn line<'a>(v: &[&'a str], at: usize) -> &'a str {
                    v.get(at).copied().unwrap_or("<end of file>")
                }
                eprintln!(
                    "  first diff at line {}:\n  - {}\n  + {}",
                    diff_at + 1,
                    line(&g_lines, diff_at),
                    line(&r_lines, diff_at)
                );
                Ok(false)
            }
            Err(e) => {
                eprintln!("MISSING {scenario}: {}: {e}", path.display());
                Ok(false)
            }
        },
    }
}

/// Sweeps the golden directory for artifacts whose scenario no longer
/// exists in the corpus. Returns the number of check failures.
fn sweep_orphans(args: &Args, known: &BTreeSet<String>) -> Result<usize, String> {
    let entries = match std::fs::read_dir(&args.goldens) {
        Ok(entries) => entries,
        // No goldens directory at all: nothing to sweep.
        Err(_) => return Ok(0),
    };
    let mut failures = 0usize;
    let mut names: Vec<String> =
        entries.filter_map(|e| e.ok().and_then(|e| e.file_name().into_string().ok())).collect();
    names.sort();
    for name in names {
        let Some(stem) = GOLDEN_KINDS.iter().find_map(|k| name.strip_suffix(k.suffix)) else {
            continue; // not a golden artifact
        };
        if known.contains(stem) {
            continue;
        }
        let path = args.goldens.join(&name);
        if args.bless {
            std::fs::remove_file(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            println!("removed orphaned {} (no scenario '{stem}' in the corpus)", path.display());
        } else {
            eprintln!(
                "ORPHAN {}: no scenario '{stem}' in the corpus — a renamed or deleted spec \
                 left its golden behind (re-bless to sweep it)",
                path.display()
            );
            failures += 1;
        }
    }
    Ok(failures)
}

fn golden_mode(argv: Vec<String>) -> ExitCode {
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let exec = exec_of(args.shards);
    // The cross-check mode: whatever the primary isn't.
    let cross = if args.shards.is_some() { ExecMode::Serial } else { ExecMode::Sharded(4) };

    let mut failures = 0usize;
    let mut known: BTreeSet<String> = BTreeSet::new();
    let mut registry: Option<RunTelemetry> = None;
    for file in &args.files {
        let name = file.display();
        let runner = match load_runner(file) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                failures += 1;
                continue;
            }
        };
        let seed = args.seed.unwrap_or(runner.spec().seed);
        // Under --metrics the primary run is instrumented while the
        // cross-mode run below stays uninstrumented — so the byte-inertness
        // contract (telemetry never perturbs a checksummed artifact) is
        // re-verified by the existing equality check on every invocation.
        let run = |exec| {
            if args.metrics.is_some() {
                runner.run_full_instrumented(exec, seed)
            } else if args.pipeline {
                runner.run_full_pipelined(exec, seed)
            } else {
                runner.run_full(exec, seed)
            }
        };
        let output = match run(exec) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: {name}: {e}");
                failures += 1;
                continue;
            }
        };
        absorb_metrics(&mut registry, output.telemetry.as_ref());
        // Verify the determinism contract against the other mode — except
        // under --checksum, whose whole purpose is an *external* comparison
        // (CI diffs a serial and a sharded invocation), so the built-in
        // cross-run would only double the work. Adaptive traces and run
        // logs are held to the same byte-identity bar as reports.
        if !args.checksum {
            match runner.run_full(cross, seed) {
                Ok(other)
                    if other.report.canonical() == output.report.canonical()
                        && other.trace.as_ref().map(|t| t.canonical())
                            == output.trace.as_ref().map(|t| t.canonical())
                        && other.log.as_ref().map(|l| l.canonical())
                            == output.log.as_ref().map(|l| l.canonical()) => {}
                Ok(_) => {
                    eprintln!(
                        "error: {name}: {exec:?} and {cross:?} runs diverge — determinism broken"
                    );
                    failures += 1;
                    continue;
                }
                Err(e) => {
                    eprintln!("error: {name}: cross-mode run failed: {e}");
                    failures += 1;
                    continue;
                }
            }
        }

        let report = &output.report;
        let scenario = report.name.clone();
        known.insert(scenario.clone());
        if args.checksum {
            match &output.trace {
                Some(t) => {
                    println!("{scenario} {:#018x} trace {:#018x}", report.checksum(), t.checksum())
                }
                None => println!("{scenario} {:#018x}", report.checksum()),
            }
        } else if args.print {
            print!("{}", report.canonical());
        }
        if args.trace {
            match &output.trace {
                Some(t) => print!("{}", t.canonical()),
                None => println!("{scenario}: no [adaptive] block, no trace"),
            }
        }

        if args.bless || args.check {
            let artifacts: [(&GoldenKind, Option<String>); 3] = [
                (&GOLDEN_KINDS[0], Some(report.canonical())),
                (&GOLDEN_KINDS[1], output.trace.as_ref().map(|t| t.canonical())),
                (&GOLDEN_KINDS[2], output.log.as_ref().map(|l| l.canonical())),
            ];
            let mut ok = true;
            for (kind, fresh) in &artifacts {
                let path = args.goldens.join(format!("{scenario}{}", kind.suffix));
                match golden_artifact(args.bless, &scenario, kind.what, &path, fresh.as_deref()) {
                    Ok(artifact_ok) => ok &= artifact_ok,
                    Err(e) => {
                        eprintln!("error: {e}");
                        ok = false;
                    }
                }
            }
            if args.check {
                if ok {
                    println!("ok {scenario} ({:#018x})", report.checksum());
                } else {
                    failures += 1;
                }
            } else if !ok {
                failures += 1;
            }
        } else if !args.checksum && !args.print {
            let delivered: usize = report.queries.iter().map(|q| q.delivered).sum();
            let tenancy = report.tenants.as_ref().map_or(String::new(), |t| {
                let admitted: u32 = t.rows.iter().map(|r| r.admitted).sum();
                let rejected: u32 = t.rows.iter().map(|r| r.rejected).sum();
                format!(", {} tenant(s) ({admitted} admitted / {rejected} rejected)", t.rows.len())
            });
            println!(
                "{scenario}: {} epochs, {} sent, {} delivered{tenancy}, checksum {:#018x}",
                report.epochs.len(),
                report.totals.sent,
                delivered,
                report.checksum()
            );
        }
    }

    // Orphan sweep: only when the file list is a complete corpus (--all)
    // and every spec processed cleanly. A spec that failed to parse or
    // run never landed in `known`, so sweeping would misreport its
    // perfectly valid goldens as orphans (and bless would delete them —
    // destroying evidence); the run is already failing loudly anyway.
    if args.swept && (args.check || args.bless) && failures == 0 {
        match sweep_orphans(&args, &known) {
            Ok(orphans) => failures += orphans,
            Err(e) => {
                eprintln!("error: {e}");
                failures += 1;
            }
        }
    }

    if let Some(path) = &args.metrics {
        if let Err(e) = write_metrics(path, registry.as_ref()) {
            eprintln!("error: {e}");
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("{failures} scenario(s)/golden(s) failed");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result: Result<u8, Failure> = match argv.first().map(String::as_str) {
        Some("record") => cmd_record(&argv[1..]).map(|()| 0),
        Some("replay") => cmd_replay(&argv[1..]).map(|()| 0),
        Some("resume") => cmd_resume(&argv[1..]).map(|()| 0),
        Some("diff") => cmd_diff(&argv[1..]).map(|same| u8::from(!same)),
        Some("salvage") => cmd_salvage(&argv[1..]),
        Some("chaos") => cmd_chaos(&argv[1..]).map(|()| 0),
        Some("metrics") => cmd_metrics(&argv[1..]).map(|()| 0),
        _ => return golden_mode(argv),
    };
    match result {
        Ok(code) => ExitCode::from(code),
        Err(f) => {
            eprintln!("error: {}", f.message);
            ExitCode::from(f.code)
        }
    }
}
