//! `craqr-scenario` — run declarative scenario specs and manage goldens.
//!
//! ```text
//! # Run every committed scenario and diff against the committed goldens:
//! cargo run --release --bin craqr-scenario -- --all scenarios --check
//!
//! # Regenerate the goldens after an intentional behaviour change
//! # (adaptive scenarios also re-bless their .trace.txt goldens):
//! cargo run --release --bin craqr-scenario -- --all scenarios --bless
//!
//! # Print `name checksum` pairs only (CI's serial-vs-sharded determinism
//! # comparison):
//! cargo run --release --bin craqr-scenario -- scenarios/*.toml --checksum --shards 4
//! ```
//!
//! | flag | default | meaning |
//! |---|---|---|
//! | `<files…>`       | —              | scenario spec files (`.toml` or `.json`) |
//! | `--all DIR`      | —              | append every spec in `DIR` (sorted) to the file list |
//! | `--shards N`     | 0              | run under `Sharded(N)` (0 = serial) |
//! | `--seed S`       | spec seed      | override every spec's seed |
//! | `--goldens DIR`  | `tests/goldens`| where golden reports live |
//! | `--bless`        | off            | write/overwrite golden files |
//! | `--check`        | off            | diff reports against goldens, exit 1 on mismatch |
//! | `--checksum`     | off            | print only `name checksum` lines |
//! | `--print`        | off            | print each canonical report to stdout |
//! | `--trace`        | off            | print each adaptive trace to stdout |
//!
//! Without `--bless`/`--check`/`--checksum`/`--print`, a one-line summary
//! per scenario is printed. Every run additionally executes the spec under
//! the *other* execution mode and asserts the two canonical reports are
//! byte-identical — the determinism contract is checked on every
//! invocation, not just in CI. Exceptions: `--checksum` skips the built-in
//! cross-run (that mode exists for *external* serial-vs-sharded diffs, as
//! CI does), and `--bless --seed` is rejected (it would write goldens no
//! `--check` could ever match).

use craqr::core::ExecMode;
use craqr::scenario::{scenario_files, ScenarioRunner, ScenarioSpec};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    files: Vec<PathBuf>,
    shards: usize,
    seed: Option<u64>,
    goldens: PathBuf,
    bless: bool,
    check: bool,
    checksum: bool,
    print: bool,
    trace: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        files: Vec::new(),
        shards: 0,
        seed: None,
        goldens: PathBuf::from("tests/goldens"),
        bless: false,
        check: false,
        checksum: false,
        print: false,
        trace: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("flag {name} needs a value"));
        match flag.as_str() {
            "--shards" => {
                args.shards = value("--shards")?.parse().map_err(|e| format!("--shards: {e}"))?
            }
            "--seed" => {
                args.seed = Some(value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?)
            }
            "--goldens" => args.goldens = PathBuf::from(value("--goldens")?),
            "--all" => {
                let dir = PathBuf::from(value("--all")?);
                let found = scenario_files(&dir).map_err(|e| e.to_string())?;
                if found.is_empty() {
                    return Err(format!("--all {}: no .toml/.json specs found", dir.display()));
                }
                args.files.extend(found);
            }
            "--bless" => args.bless = true,
            "--check" => args.check = true,
            "--checksum" => args.checksum = true,
            "--print" => args.print = true,
            "--trace" => args.trace = true,
            "--help" | "-h" => {
                println!("see the doc comment at the top of src/bin/craqr-scenario.rs for usage");
                std::process::exit(0);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}' (try --help)"))
            }
            file => args.files.push(PathBuf::from(file)),
        }
    }
    if args.files.is_empty() {
        return Err("at least one scenario spec file is required (try --help)".into());
    }
    if args.bless && args.check {
        return Err("--bless and --check are mutually exclusive".into());
    }
    if args.bless && args.seed.is_some() {
        return Err(
            "--bless with --seed would write goldens no --check or test run can ever match \
             (goldens are defined by each spec's own seed)"
                .into(),
        );
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let exec = if args.shards > 0 { ExecMode::Sharded(args.shards) } else { ExecMode::Serial };
    // The cross-check mode: whatever the primary isn't.
    let cross = if args.shards > 0 { ExecMode::Serial } else { ExecMode::Sharded(4) };

    let mut failures = 0usize;
    for file in &args.files {
        let name = file.display();
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {name}: {e}");
                failures += 1;
                continue;
            }
        };
        let spec = match ScenarioSpec::from_source(&file.to_string_lossy(), &src) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {name}: {e}");
                failures += 1;
                continue;
            }
        };
        let runner = match ScenarioRunner::new(spec) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {name}: {e}");
                failures += 1;
                continue;
            }
        };
        let seed = args.seed.unwrap_or(runner.spec().seed);
        let (report, trace) = match runner.run_full(exec, seed) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {name}: {e}");
                failures += 1;
                continue;
            }
        };
        // Verify the determinism contract against the other mode — except
        // under --checksum, whose whole purpose is an *external* comparison
        // (CI diffs a serial and a sharded invocation), so the built-in
        // cross-run would only double the work. Adaptive traces are held
        // to the same byte-identity bar as reports.
        if !args.checksum {
            match runner.run_full(cross, seed) {
                Ok((other, other_trace))
                    if other.canonical() == report.canonical()
                        && other_trace.as_ref().map(|t| t.canonical())
                            == trace.as_ref().map(|t| t.canonical()) => {}
                Ok(_) => {
                    eprintln!(
                        "error: {name}: {exec:?} and {cross:?} runs diverge — determinism broken"
                    );
                    failures += 1;
                    continue;
                }
                Err(e) => {
                    eprintln!("error: {name}: cross-mode run failed: {e}");
                    failures += 1;
                    continue;
                }
            }
        }

        let scenario = &report.name;
        if args.checksum {
            match &trace {
                Some(t) => {
                    println!("{scenario} {:#018x} trace {:#018x}", report.checksum(), t.checksum())
                }
                None => println!("{scenario} {:#018x}", report.checksum()),
            }
        } else if args.print {
            print!("{}", report.canonical());
        }
        if args.trace {
            match &trace {
                Some(t) => print!("{}", t.canonical()),
                None => println!("{scenario}: no [adaptive] block, no trace"),
            }
        }

        let golden_path = args.goldens.join(format!("{scenario}.golden.txt"));
        let trace_path = args.goldens.join(format!("{scenario}.trace.txt"));
        if args.bless {
            if let Some(parent) = golden_path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            if let Err(e) = std::fs::write(&golden_path, report.canonical()) {
                eprintln!("error: writing {}: {e}", golden_path.display());
                failures += 1;
                continue;
            }
            println!("blessed {}", golden_path.display());
            match &trace {
                Some(t) => {
                    if let Err(e) = std::fs::write(&trace_path, t.canonical()) {
                        eprintln!("error: writing {}: {e}", trace_path.display());
                        failures += 1;
                        continue;
                    }
                    println!("blessed {}", trace_path.display());
                }
                // The scenario stopped producing a trace (its [adaptive]
                // block was removed): a leftover trace golden would rot
                // unchecked, so blessing deletes it.
                None => {
                    if trace_path.exists() {
                        if let Err(e) = std::fs::remove_file(&trace_path) {
                            eprintln!("error: removing stale {}: {e}", trace_path.display());
                            failures += 1;
                            continue;
                        }
                        println!("removed stale {}", trace_path.display());
                    }
                }
            }
        } else if args.check {
            match std::fs::read_to_string(&golden_path) {
                Ok(golden) if golden == report.canonical() => {
                    let trace_ok = match &trace {
                        None if trace_path.exists() => {
                            eprintln!(
                                "STALE {scenario}: {} exists but the scenario produces no \
                                 adaptive trace (re-bless to remove it)",
                                trace_path.display()
                            );
                            false
                        }
                        None => true,
                        Some(t) => match std::fs::read_to_string(&trace_path) {
                            Ok(golden_trace) if golden_trace == t.canonical() => true,
                            Ok(_) => {
                                eprintln!(
                                    "MISMATCH {scenario}: adaptive trace differs from {} \
                                     (re-bless after verifying the change is intentional)",
                                    trace_path.display()
                                );
                                false
                            }
                            Err(e) => {
                                eprintln!("MISSING {scenario}: {}: {e}", trace_path.display());
                                false
                            }
                        },
                    };
                    if trace_ok {
                        println!("ok {scenario} ({:#018x})", report.checksum());
                    } else {
                        failures += 1;
                    }
                }
                Ok(golden) => {
                    eprintln!(
                        "MISMATCH {scenario}: report differs from {} \
                         (run with --bless after verifying the change is intentional)",
                        golden_path.display()
                    );
                    let fresh = report.canonical();
                    let (g_lines, r_lines): (Vec<&str>, Vec<&str>) =
                        (golden.lines().collect(), fresh.lines().collect());
                    let diff_at = g_lines
                        .iter()
                        .zip(&r_lines)
                        .position(|(g, r)| g != r)
                        // One report is a line-prefix of the other: the
                        // first diff is the first unmatched line.
                        .unwrap_or_else(|| g_lines.len().min(r_lines.len()));
                    fn line<'a>(v: &[&'a str], at: usize) -> &'a str {
                        v.get(at).copied().unwrap_or("<end of report>")
                    }
                    eprintln!(
                        "  first diff at line {}:\n  - {}\n  + {}",
                        diff_at + 1,
                        line(&g_lines, diff_at),
                        line(&r_lines, diff_at)
                    );
                    failures += 1;
                }
                Err(e) => {
                    eprintln!("MISSING {scenario}: {}: {e}", golden_path.display());
                    failures += 1;
                }
            }
        } else if !args.checksum && !args.print {
            let delivered: usize = report.queries.iter().map(|q| q.delivered).sum();
            println!(
                "{scenario}: {} epochs, {} sent, {} delivered, checksum {:#018x}",
                report.epochs.len(),
                report.totals.sent,
                delivered,
                report.checksum()
            );
        }
    }
    if failures > 0 {
        eprintln!("{failures} scenario(s) failed");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
