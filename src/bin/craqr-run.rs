//! `craqr-run` — a scenario runner for CrAQR from the command line.
//!
//! ```text
//! cargo run --release --bin craqr-run -- \
//!     --sensors 1500 --human 0.5 --epochs 24 --seed 7 \
//!     --query "ACQUIRE rain FROM RECT(0,0,4,4) RATE 0.2" \
//!     --query "ACQUIRE temp FROM RECT(1,1,3,3) RATE 0.5"
//! ```
//!
//! Two attributes are pre-registered against simulated ground truth:
//! `rain` (a moving rain front; human-sensed) and `temp` (a heat-island
//! temperature field; sensor-sensed). Flags:
//!
//! | flag | default | meaning |
//! |---|---|---|
//! | `--size KM`        | 4      | region side length (square region) |
//! | `--sensors N`      | 1000   | crowd size |
//! | `--human F`        | 0.4    | human fraction (reluctant, slow) |
//! | `--seed S`         | 7      | master seed |
//! | `--epochs N`       | 12     | epochs to run (5 simulated min each) |
//! | `--grid SIDE`      | 4      | cells per grid side (√h) |
//! | `--budget B`       | 20     | initial requests/epoch per (attr, cell) |
//! | `--shards N`       | serial | worker shards for the process phase (`N >= 1`; omit for serial — `0` is rejected, it has no workers); any N is bit-identical to serial under the same seed |
//! | `--query "TEXT"`   | —      | declarative query (repeatable, ≥1 required) |
//! | `--dot`            | off    | print Graphviz topologies instead of tables |

use craqr::core::plan::PlannerConfig;
use craqr::prelude::*;
use std::process::ExitCode;

struct Args {
    size: f64,
    sensors: usize,
    human: f64,
    seed: u64,
    epochs: u64,
    grid: u32,
    budget: f64,
    shards: Option<usize>,
    queries: Vec<String>,
    dot: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        size: 4.0,
        sensors: 1000,
        human: 0.4,
        seed: 7,
        epochs: 12,
        grid: 4,
        budget: 20.0,
        shards: None,
        queries: Vec::new(),
        dot: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("flag {name} needs a value"));
        match flag.as_str() {
            "--size" => args.size = value("--size")?.parse().map_err(|e| format!("--size: {e}"))?,
            "--sensors" => {
                args.sensors = value("--sensors")?.parse().map_err(|e| format!("--sensors: {e}"))?
            }
            "--human" => {
                args.human = value("--human")?.parse().map_err(|e| format!("--human: {e}"))?
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--epochs" => {
                args.epochs = value("--epochs")?.parse().map_err(|e| format!("--epochs: {e}"))?
            }
            "--grid" => args.grid = value("--grid")?.parse().map_err(|e| format!("--grid: {e}"))?,
            "--budget" => {
                args.budget = value("--budget")?.parse().map_err(|e| format!("--budget: {e}"))?
            }
            "--shards" => {
                let n: usize = value("--shards")?.parse().map_err(|e| format!("--shards: {e}"))?;
                if n == 0 {
                    // Reject the degenerate shard count at the flag
                    // boundary, before any epoch runs, instead of letting
                    // `ExecMode::shards()` panic mid-loop.
                    return Err("--shards 0 has no workers to run on; use N >= 1, or omit \
                                the flag for serial"
                        .into());
                }
                args.shards = Some(n);
            }
            "--query" => args.queries.push(value("--query")?),
            "--dot" => args.dot = true,
            "--help" | "-h" => {
                println!("see the doc comment at the top of src/bin/craqr-run.rs for usage");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    if args.queries.is_empty() {
        return Err("at least one --query is required (try --help)".into());
    }
    if !(0.0..=1.0).contains(&args.human) {
        return Err("--human must be in [0, 1]".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let region = Rect::with_size(args.size, args.size);
    let crowd = Crowd::new(CrowdConfig {
        region,
        population: PopulationConfig {
            size: args.sensors,
            placement: Placement::city(&region),
            mobility: Mobility::random_waypoint(0.08, 5.0),
            human_fraction: args.human,
        },
        seed: args.seed,
    });
    let exec = match args.shards {
        Some(n) => ExecMode::Sharded(n),
        None => ExecMode::Serial,
    };
    let mut server = CraqrServer::new(
        crowd,
        ServerConfig {
            initial_budget: args.budget,
            planner: PlannerConfig { grid_side: args.grid, seed: args.seed, ..Default::default() },
            exec,
            ..Default::default()
        },
    );
    server.register_attribute(
        "rain",
        true,
        Box::new(RainFront::new(0.0, args.size / 200.0, args.size / 3.0)),
    );
    server.register_attribute("temp", false, Box::new(TemperatureField::city_default()));

    let mut queries = Vec::new();
    for text in &args.queries {
        match server.submit(text) {
            Ok(qid) => {
                println!("{qid}: {text}");
                queries.push(qid);
            }
            Err(e) => {
                eprintln!("error: query '{text}': {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if args.dot {
        println!("{}", server.fabricator().explain_dot());
        return ExitCode::SUCCESS;
    }

    println!(
        "\n{:>5} {:>9} {:>10} {:>9} {:>10}",
        "epoch", "requests", "responses", "ingested", "delivered"
    );
    for _ in 0..args.epochs {
        let r = server.run_epoch();
        let delivered: usize = r.delivered.iter().map(|(_, n)| n).sum();
        println!(
            "{:>5} {:>9} {:>10} {:>9} {:>10}",
            r.epoch, r.dispatch.sent, r.responses, r.ingested, delivered
        );
    }

    println!("\nper-query summary after {:.0} simulated minutes:", server.now());
    let minutes = server.now();
    for qid in queries {
        let plan = server.fabricator().query_plan(qid).expect("standing query");
        let requested = plan.query.rate;
        let area = plan.footprint.area();
        let n = server.take_output(qid).len();
        let achieved = n as f64 / (area * minutes);
        println!("  {qid}: {n} tuples, requested λ = {requested}, achieved λ = {achieved:.3}");
    }
    println!("\ntopologies:\n{}", server.fabricator().explain());
    ExitCode::SUCCESS
}
