//! `craqr-run` — a scenario runner for CrAQR from the command line.
//!
//! ```text
//! cargo run --release --bin craqr-run -- \
//!     --sensors 1500 --human 0.5 --epochs 24 --seed 7 \
//!     --query "ACQUIRE rain FROM RECT(0,0,4,4) RATE 0.2" \
//!     --query "ACQUIRE temp FROM RECT(1,1,3,3) RATE 0.5"
//! ```
//!
//! Two attributes are pre-registered against simulated ground truth:
//! `rain` (a moving rain front; human-sensed) and `temp` (a heat-island
//! temperature field; sensor-sensed). Flags:
//!
//! | flag | default | meaning |
//! |---|---|---|
//! | `--size KM`        | 4      | region side length (square region) |
//! | `--sensors N`      | 1000   | crowd size |
//! | `--human F`        | 0.4    | human fraction (reluctant, slow) |
//! | `--seed S`         | 7      | master seed |
//! | `--epochs N`       | 12     | epochs to run (5 simulated min each) |
//! | `--grid SIDE`      | 4      | cells per grid side (√h) |
//! | `--budget B`       | 20     | initial requests/epoch per (attr, cell) |
//! | `--shards N`       | serial | worker shards for the process phase (`N >= 1`; omit for serial — `0` is rejected, it has no workers); any N is bit-identical to serial under the same seed |
//! | `--pool CAP`       | off    | run multi-tenant: register a tenant with a budget pool of `CAP` requests/epoch; queries run admission control against it (rejections are reported, the run continues with what was admitted) and dispatch charges the pool, throttling at exhaustion |
//! | `--query "TEXT"`   | —      | declarative query (repeatable, ≥1 required) |
//! | `--dot`            | off    | print Graphviz topologies instead of tables |

use craqr::core::plan::PlannerConfig;
use craqr::prelude::*;
use std::process::ExitCode;

struct Args {
    size: f64,
    sensors: usize,
    human: f64,
    seed: u64,
    epochs: u64,
    grid: u32,
    budget: f64,
    shards: Option<usize>,
    pool: Option<f64>,
    queries: Vec<String>,
    dot: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        size: 4.0,
        sensors: 1000,
        human: 0.4,
        seed: 7,
        epochs: 12,
        grid: 4,
        budget: 20.0,
        shards: None,
        pool: None,
        queries: Vec::new(),
        dot: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("flag {name} needs a value"));
        match flag.as_str() {
            "--size" => args.size = value("--size")?.parse().map_err(|e| format!("--size: {e}"))?,
            "--sensors" => {
                args.sensors = value("--sensors")?.parse().map_err(|e| format!("--sensors: {e}"))?
            }
            "--human" => {
                args.human = value("--human")?.parse().map_err(|e| format!("--human: {e}"))?
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--epochs" => {
                args.epochs = value("--epochs")?.parse().map_err(|e| format!("--epochs: {e}"))?
            }
            "--grid" => args.grid = value("--grid")?.parse().map_err(|e| format!("--grid: {e}"))?,
            "--budget" => {
                args.budget = value("--budget")?.parse().map_err(|e| format!("--budget: {e}"))?
            }
            "--shards" => {
                let n: usize = value("--shards")?.parse().map_err(|e| format!("--shards: {e}"))?;
                if n == 0 {
                    // Reject the degenerate shard count at the flag
                    // boundary, before any epoch runs, instead of letting
                    // `ExecMode::shards()` panic mid-loop.
                    return Err("--shards 0 has no workers to run on; use N >= 1, or omit \
                                the flag for serial"
                        .into());
                }
                args.shards = Some(n);
            }
            "--pool" => {
                let cap: f64 = value("--pool")?.parse().map_err(|e| format!("--pool: {e}"))?;
                if !(cap.is_finite() && cap > 0.0) {
                    return Err("--pool must be finite and > 0 (requests/epoch)".into());
                }
                args.pool = Some(cap);
            }
            "--query" => args.queries.push(value("--query")?),
            "--dot" => args.dot = true,
            "--help" | "-h" => {
                println!("see the doc comment at the top of src/bin/craqr-run.rs for usage");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    if args.queries.is_empty() {
        return Err("at least one --query is required (try --help)".into());
    }
    if !(0.0..=1.0).contains(&args.human) {
        return Err("--human must be in [0, 1]".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let region = Rect::with_size(args.size, args.size);
    let crowd = Crowd::new(CrowdConfig {
        region,
        population: PopulationConfig {
            size: args.sensors,
            placement: Placement::city(&region),
            mobility: Mobility::random_waypoint(0.08, 5.0),
            human_fraction: args.human,
        },
        seed: args.seed,
    });
    let exec = match args.shards {
        Some(n) => ExecMode::Sharded(n),
        None => ExecMode::Serial,
    };
    let mut server = CraqrServer::new(
        crowd,
        ServerConfig {
            initial_budget: args.budget,
            planner: PlannerConfig { grid_side: args.grid, seed: args.seed, ..Default::default() },
            exec,
            ..Default::default()
        },
    );
    server.register_attribute(
        "rain",
        true,
        Box::new(RainFront::new(0.0, args.size / 200.0, args.size / 3.0)),
    );
    server.register_attribute("temp", false, Box::new(TemperatureField::city_default()));

    let tenant = args.pool.map(|cap| server.register_tenant("cli", cap));

    let mut queries = Vec::new();
    for text in &args.queries {
        let result = match tenant {
            Some(t) => server.submit_for(t, text),
            None => server.submit(text),
        };
        match result {
            Ok(qid) => {
                println!("{qid}: {text}");
                queries.push(qid);
            }
            Err(craqr::core::server::SubmitError::Rejected(decision)) => {
                // An over-committing query is an expected multi-tenant
                // outcome, not a fatal error: report it and run what fits.
                println!("rejected: {text}\n  {decision}");
            }
            Err(e) => {
                eprintln!("error: query '{text}': {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if queries.is_empty() {
        eprintln!("error: admission rejected every query; raise --pool or lower the rates");
        return ExitCode::FAILURE;
    }

    if args.dot {
        println!("{}", server.fabricator().explain_dot());
        return ExitCode::SUCCESS;
    }

    println!(
        "\n{:>5} {:>9} {:>10} {:>9} {:>10}",
        "epoch", "requests", "responses", "ingested", "delivered"
    );
    for _ in 0..args.epochs {
        let r = server.run_epoch();
        let delivered: usize = r.delivered.iter().map(|(_, n)| n).sum();
        println!(
            "{:>5} {:>9} {:>10} {:>9} {:>10}",
            r.epoch, r.dispatch.sent, r.responses, r.ingested, delivered
        );
    }

    println!("\nper-query summary after {:.0} simulated minutes:", server.now());
    let minutes = server.now();
    for qid in queries {
        // craqr-lint: allow(W1): internal invariant — qid came from this run's own submit loop
        let plan = server.fabricator().query_plan(qid).expect("standing query");
        let requested = plan.query.rate;
        let area = plan.footprint.area();
        let n = server.take_output(qid).len();
        let achieved = n as f64 / (area * minutes);
        println!("  {qid}: {n} tuples, requested λ = {requested}, achieved λ = {achieved:.3}");
    }
    if let Some(registry) = server.tenants() {
        let s = &registry.summaries()[0];
        println!(
            "\ntenant '{}': pool {} req/epoch, committed {:.1}, charged {:.1} total, \
             peak epoch charge {:.1}, {} admitted / {} rejected",
            s.name,
            s.capacity,
            s.committed,
            s.charged_total,
            s.peak_epoch_charge,
            s.admitted,
            s.rejected
        );
    }
    println!("\ntopologies:\n{}", server.fabricator().explain());
    ExitCode::SUCCESS
}
