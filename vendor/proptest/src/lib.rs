//! Offline mini-proptest.
//!
//! A deterministic, dependency-free re-implementation of the slice of the
//! `proptest` API this workspace uses: range/tuple/`Just`/`prop_oneof!`
//! strategies, `prop_map`, `prop::collection::vec`, `any::<T>()`, the
//! [`proptest!`] test macro, and the `prop_assert*` family.
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case reports its inputs (via the assert
//!   message) and the case index; re-running is deterministic, so the
//!   failure reproduces exactly.
//! - **Deterministic seeding.** Case `i` of test `name` draws from an RNG
//!   seeded by `fnv1a(name) ⊕ i`, so failures are stable across runs and
//!   machines — no persistence files.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (the `with_cases` subset).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed or rejected property case (raised by `prop_assert!` /
/// `prop_assume!`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure reason.
    pub message: String,
    /// `true` when the case was *rejected* (assumption unmet) rather than
    /// failed — the runner skips it instead of reporting a failure.
    pub rejected: bool,
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into(), rejected: false }
    }

    /// Builds a rejection (skip) from a message.
    pub fn reject(message: impl Into<String>) -> Self {
        Self { message: message.into(), rejected: true }
    }
}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator.
///
/// Object-safe so heterogeneous strategies can be unified under
/// `Box<dyn Strategy<Value = V>>` (what `prop_oneof!` builds).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform draw over a half-open range.
impl<T: rand::SampleUniform + Copy + 'static> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        rng.gen_range(self.start..self.end)
    }
}

/// Full-range uniform draw of a primitive.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// `any::<T>()` — the full-range uniform strategy of `T`.
pub fn any<T>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T> Strategy for Any<T>
where
    rand::distributions::Standard: rand::distributions::Distribution<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        rng.gen()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// A uniform choice among boxed alternatives (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds the union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        use rand::Rng;
        let idx = rng.gen_range(0usize..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A `Vec` of `element` draws with length uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.start..self.len.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// `Some(inner)` three times out of four, `None` otherwise (upstream's
    /// default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_range(0u8..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The `prop::` namespace alias used by `prop::collection::vec`.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        prop_oneof, proptest, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Deterministic test-name hashing for per-test seed streams.
pub fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Runs `cases` deterministic cases of a property body.
///
/// Used by the [`proptest!`] expansion; not part of upstream's public API.
pub fn run_property<F>(name: &str, config: ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> TestCaseResult,
{
    for i in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(fnv1a(name) ^ (i as u64).wrapping_mul(0x9E37_79B9));
        if let Err(e) = case(&mut rng) {
            if e.rejected {
                continue; // assumption unmet: skip, don't fail
            }
            panic!("property `{name}` failed at case {i}/{}: {}", config.cases, e.message);
        }
    }
}

/// Declares deterministic property tests.
///
/// Supports the upstream surface used in-tree:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_prop(x in 0.0f64..1.0, seed in any::<u64>()) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(stringify!($name), config, |__rng| {
                    let ($($arg,)+) = ($($crate::Strategy::generate(&($strat), __rng),)+);
                    #[allow(unreachable_code)]
                    {
                        $body
                        Ok(())
                    }
                });
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args…)`: fail the
/// current case without panicking (the runner reports it).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assume!(cond)`: reject (skip) the current case when `cond` is
/// false — for filtering generated inputs that don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(concat!(
                "assumption unmet: ",
                stringify!($cond)
            )));
        }
    };
}

/// Equality form of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Inequality form of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// A uniform choice among strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.5f64..9.5, n in 3usize..7) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..7).contains(&n));
        }

        #[test]
        fn maps_and_tuples_compose(
            r in (0.0f64..1.0, 10.0f64..20.0).prop_map(|(a, b)| a + b),
            v in prop::collection::vec(0u8..4, 1..6),
        ) {
            prop_assert!((10.0..21.0).contains(&r));
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_picks_every_arm(x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            crate::run_property("det", ProptestConfig::with_cases(5), |rng| {
                out.push(crate::Strategy::generate(&(0.0f64..1.0), rng));
                Ok(())
            });
        }
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_index() {
        crate::run_property("always_fails", ProptestConfig::with_cases(3), |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
