//! The `Distribution` abstraction and the `Standard` uniform distribution.

use crate::RngCore;

/// Converts a random 64-bit word to a double in `[0, 1)` using the top 53
/// bits (the standard `rand` construction).
#[inline]
pub(crate) fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A sampling distribution over values of `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution of each primitive type: full range
/// for integers, `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // Top 24 bits for an unbiased single-precision unit uniform.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn _object_safety(_: &dyn RngCore) {}
