//! A small, offline, API-compatible subset of the `rand` 0.8 crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the narrow slice of `rand` it actually uses:
//! [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64),
//! [`SeedableRng::seed_from_u64`], the [`Rng`] convenience methods
//! (`gen`, `gen_range`, `gen_bool`), [`seq::SliceRandom`]
//! (`choose` / `choose_multiple`), and the
//! [`distributions::Distribution`] / [`distributions::Standard`] traits.
//!
//! Streams are NOT bit-compatible with upstream `rand`'s ChaCha-backed
//! `StdRng`; every consumer in this workspace only relies on
//! *self-consistent determinism* (same seed ⇒ same stream), which this
//! implementation guarantees.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// The raw generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniformly distributed 32-bit word (upper bits of
    /// [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generator construction.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types uniformly sampleable over a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// A uniform draw from `[lo, hi)`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = crate::distributions::unit_f64(rng.next_u64());
        lo + (hi - lo) * u
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * crate::distributions::unit_f64(rng.next_u64()) as f32
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sample range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                // Rejection-free for our purposes: the modulo bias for
                // spans ≪ 2^64 is far below any statistical test in the
                // workspace; keep it branch-free and deterministic.
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i32, i64);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from the standard (uniform) distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Uniform draw from a half-open range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample empty range");
        T::sample_in(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        distributions::unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
