//! Random selection from slices.

use crate::Rng;

/// Extension methods for random selection out of slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// A uniformly chosen element, or `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements chosen uniformly without replacement
    /// (all of them when `amount >= len`), in selection order.
    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let idx = (rng.next_u64() % self.len() as u64) as usize;
            Some(&self[idx])
        }
    }

    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index table: O(len) setup,
        // O(amount) swaps, exact uniformity over subsets.
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = i + (rng.next_u64() % (self.len() - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx[..amount].iter().map(|&i| &self[i]).collect::<Vec<&T>>().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_covers_all_elements() {
        let xs = [1, 2, 3, 4, 5];
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*xs.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), xs.len());
    }

    #[test]
    fn choose_multiple_is_distinct_and_bounded() {
        let xs: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let picked: Vec<u32> = xs.choose_multiple(&mut rng, 30).copied().collect();
        assert_eq!(picked.len(), 30);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 30, "selection must be without replacement");
        // Asking for more than there is yields everything.
        assert_eq!(xs.choose_multiple(&mut rng, 500).count(), 100);
    }

    #[test]
    fn empty_slice_chooses_none() {
        let xs: [u8; 0] = [];
        let mut rng = StdRng::seed_from_u64(3);
        assert!(xs.choose(&mut rng).is_none());
        assert_eq!(xs.choose_multiple(&mut rng, 3).count(), 0);
    }
}
