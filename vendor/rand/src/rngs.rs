//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Seeded from a single `u64` through the SplitMix64 expansion recommended
/// by the xoshiro authors, so nearby seeds yield decorrelated streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn split_mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [split_mix(&mut sm), split_mix(&mut sm), split_mix(&mut sm), split_mix(&mut sm)];
        Self { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_doubles_cover_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }
}
