//! Offline stand-in for `serde`.
//!
//! Re-exports no-op [`Serialize`] / [`Deserialize`] derive macros so the
//! workspace's `#[derive(Serialize, Deserialize)]` annotations compile
//! without network access. No serialization machinery exists; swap this
//! path dependency for the real crates.io `serde` to activate it.

pub use serde_derive::{Deserialize, Serialize};
