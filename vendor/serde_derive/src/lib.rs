//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace's types annotate themselves with serde derives so a real
//! serde can be dropped in when the build environment has network access,
//! but nothing in-tree performs serialization. These derives therefore
//! expand to nothing: the annotation stays legal, zero code is generated,
//! and no dependency on `syn`/`quote` is needed.

use proc_macro::TokenStream;

/// Expands `#[derive(Serialize)]` to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands `#[derive(Deserialize)]` to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
