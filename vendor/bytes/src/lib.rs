//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] / [`BytesMut`] are `Vec<u8>`-backed (no refcounted slicing —
//! `slice` copies), and [`Buf`] / [`BufMut`] provide the big-endian
//! cursor methods the workspace's wire codec uses. Semantics match the
//! real crate for every operation exercised in-tree.

use std::ops::{Deref, DerefMut, Index, IndexMut, RangeBounds};

/// An immutable byte buffer with an advancing read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl Bytes {
    /// Length of the *unread remainder*.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// `true` when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies a sub-range of the unread remainder into a new `Bytes`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len(),
        };
        Bytes { data: self.data[self.pos + start..self.pos + end].to_vec(), pos: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl BytesMut {
    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }

    /// Buffered length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        Self { data: s.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl Index<usize> for BytesMut {
    type Output = u8;
    fn index(&self, i: usize) -> &u8 {
        &self.data[i]
    }
}

impl IndexMut<usize> for BytesMut {
    fn index_mut(&mut self, i: usize) -> &mut u8 {
        &mut self.data[i]
    }
}

/// Read-cursor over a byte source (big-endian getters, as upstream).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Borrows the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor.
    ///
    /// # Panics
    /// Panics when advancing past the end.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.pos += cnt;
    }
}

/// Write-cursor over a growable byte sink (big-endian putters).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_cursor() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16(0x0102);
        b.put_u64(0x0A0B_0C0D_0E0F_1011);
        b.put_f64(-2.5);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 8 + 8);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u64(), 0x0A0B_0C0D_0E0F_1011);
        assert_eq!(r.get_f64(), -2.5);
        assert!(r.is_empty());
    }

    #[test]
    fn slice_copies_subrange() {
        let mut b = BytesMut::with_capacity(4);
        b.put_slice(&[1, 2, 3, 4]);
        let f = b.freeze();
        assert_eq!(&f.slice(1..3)[..], &[2, 3]);
        assert_eq!(f.len(), 4, "slice must not consume");
    }
}
