//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the `Mutex` API surface the workspace uses is provided: infallible
//! `lock()` (poisoning is unwrapped — a poisoned lock means a panicked
//! holder, which the workspace treats as fatal anyway).

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual-exclusion lock with an infallible `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self { inner: StdMutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// The guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;
