//! Offline stand-in for `crossbeam`, providing the `channel` subset the
//! workspace uses, backed by `std::sync::mpsc`.

pub mod channel {
    //! Unbounded MPSC channels with `crossbeam`-shaped error types.

    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error of a failed send (receiver dropped); carries the message back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error of a non-blocking receive.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the buffer is drained.
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only when the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip_and_empty() {
            let (tx, rx) = unbounded();
            tx.send(5u32).unwrap();
            assert_eq!(rx.try_recv(), Ok(5));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
