//! Offline mini-criterion.
//!
//! Implements the `criterion` surface the workspace's `ops_micro` bench
//! uses — groups, `bench_function`, `iter` / `iter_batched`, throughput
//! annotation, `criterion_group!` / `criterion_main!` — over plain
//! `std::time::Instant` timing. No statistics beyond mean/min; results
//! print as one line per benchmark:
//!
//! ```text
//! pmat_ops/thin_10k  mean 1.234 ms  min 1.180 ms  (8.1 Melem/s)
//! ```
//!
//! Honors `--test` on the command line (run each benchmark once, smoke
//! mode) the way real criterion does, so `cargo test --benches` stays
//! fast.

use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of the std hint).
pub use std::hint::black_box;

/// Batch sizing hints (accepted, not acted upon).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per measured batch.
    PerIteration,
}

/// Throughput annotation for rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { sample_size: 20, test_mode }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }

    /// Runs a benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let samples = if self.test_mode { 1 } else { self.sample_size };
        run_one(id, None, samples, self.test_mode, &mut f);
        self
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        let samples = if self.criterion.test_mode { 1 } else { self.criterion.sample_size };
        run_one(&full, self.throughput, samples, self.criterion.test_mode, &mut f);
        self
    }

    /// Closes the group (no-op; exists for API parity).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    samples: usize,
    test_mode: bool,
    f: &mut F,
) {
    let mut durations = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0, test_mode };
        f(&mut b);
        if b.iters > 0 {
            durations.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
    }
    if durations.is_empty() {
        println!("{id}: no measurements");
        return;
    }
    let mean = durations.iter().sum::<f64>() / durations.len() as f64;
    let min = durations.iter().copied().fold(f64::INFINITY, f64::min);
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  ({:.2} Melem/s)", n as f64 / mean / 1e6),
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.2} MiB/s)", n as f64 / mean / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!("{id}  mean {}  min {}{rate}", fmt_secs(mean), fmt_secs(min));
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// The per-sample measurement context handed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
    test_mode: bool,
}

impl Bencher {
    fn rounds(&self) -> u64 {
        if self.test_mode {
            1
        } else {
            8
        }
    }

    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let rounds = self.rounds();
        let start = Instant::now();
        for _ in 0..rounds {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += rounds;
    }

    /// Times `routine` over inputs produced by `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.rounds() {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a benchmark group entry point (API-parity subset).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_prints() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
