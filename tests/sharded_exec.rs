//! The sharded executor's determinism contract, tested at the server
//! level: `ExecMode::Serial` and `ExecMode::Sharded(n)` must be
//! indistinguishable — bit-identical fabricated streams, dispatch
//! statistics, and budget decisions — for the same root seed.

use craqr::core::{ExecMode, ShardIngest};
use craqr::prelude::*;
use proptest::prelude::*;

fn crowd(size: usize, seed: u64) -> Crowd {
    let region = Rect::with_size(4.0, 4.0);
    Crowd::new(CrowdConfig {
        region,
        population: PopulationConfig {
            size,
            placement: Placement::Uniform,
            mobility: Mobility::RandomWalk { sigma: 0.15 },
            human_fraction: 0.3,
        },
        seed,
    })
}

fn server(size: usize, seed: u64, exec: ExecMode) -> (CraqrServer, Vec<QueryId>) {
    let mut config = ServerConfig { exec, ..ServerConfig::default() };
    config.planner.seed = seed;
    let mut s = CraqrServer::new(crowd(size, seed), config);
    s.register_attribute("rain", true, Box::new(RainFront::new(2.0, 0.02, 2.0)));
    s.register_attribute("temp", false, Box::new(TemperatureField::city_default()));
    let queries = vec![
        s.submit("ACQUIRE rain FROM RECT(0,0,4,4) RATE 0.4").unwrap(),
        s.submit("ACQUIRE temp FROM RECT(0,0,2,2) RATE 1").unwrap(),
        s.submit("ACQUIRE temp FROM RECT(1,1,4,3) RATE 0.6").unwrap(),
    ];
    (s, queries)
}

/// The headline determinism test: ten epochs, three overlapping queries,
/// sixteen cells — serial and 4-way-sharded runs must deliver identical
/// sink contents tuple for tuple, and identical budget behaviour.
#[test]
fn serial_and_sharded_4_are_bit_identical_across_10_epochs() {
    let (mut serial, qs) = server(700, 42, ExecMode::Serial);
    let (mut sharded, qp) = server(700, 42, ExecMode::Sharded(4));
    assert_eq!(qs, qp);

    for epoch in 0..10 {
        let a = serial.run_epoch();
        let b = sharded.run_epoch();
        // Everything except the shard breakdown must match exactly.
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.now, b.now);
        assert_eq!(a.dispatch, b.dispatch, "epoch {epoch}: dispatch diverged");
        assert_eq!(a.responses, b.responses, "epoch {epoch}: responses diverged");
        assert_eq!(a.mitigation_rejected, b.mitigation_rejected);
        assert_eq!(a.ingested, b.ingested);
        assert_eq!(a.delivered, b.delivered, "epoch {epoch}: deliveries diverged");
        assert_eq!(a.tuning, b.tuning, "epoch {epoch}: budget tuning diverged");
        // The merged ingest outcome matches; only the breakdown differs.
        assert_eq!(a.exec.routed, b.exec.routed);
        assert_eq!(a.exec.dropped, b.exec.dropped);
        assert_eq!(a.exec.shards.len(), 1);
        assert_eq!(b.exec.shards.len(), 4);
    }

    // Sink contents: bit-identical fabricated streams per query.
    for q in qs {
        let out_s = serial.take_output(q);
        let out_p = sharded.take_output(q);
        assert_eq!(out_s.len(), out_p.len(), "query {q}: stream length diverged");
        assert_eq!(out_s, out_p, "query {q}: stream contents diverged");
        assert!(!out_s.is_empty(), "query {q} must deliver something in 10 epochs");
    }

    // Budget state converged identically.
    let cat = serial.catalog();
    let attrs: Vec<AttributeId> = ["rain", "temp"].iter().map(|n| cat.lookup(n).unwrap()).collect();
    for q in 0..4u32 {
        for r in 0..4u32 {
            for attr in &attrs {
                let cell = CellId::new(q, r);
                assert_eq!(
                    serial.handler().budget_of(cell, *attr),
                    sharded.handler().budget_of(cell, *attr),
                    "budget diverged at {cell:?} {attr:?}"
                );
            }
        }
    }
    assert_eq!(serial.handler().totals(), sharded.handler().totals());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Shard merge preserves totals: for any seed and shard count, the
    /// per-shard tuple counts sum to the serial run's routed count, chains
    /// partition without loss, and budget spend (requests drawn) matches.
    #[test]
    fn shard_merge_preserves_tuple_count_and_budget_spend(
        seed in any::<u64>(),
        shards in 1usize..6,
        size in 150usize..400,
    ) {
        let (mut serial, _) = server(size, seed, ExecMode::Serial);
        let (mut sharded, _) = server(size, seed, ExecMode::Sharded(shards));
        for _ in 0..3 {
            let a = serial.run_epoch();
            let b = sharded.run_epoch();

            // Merge preserves the total tuple count...
            let shard_sum: usize = b.exec.shards.iter().map(|s: &ShardIngest| s.tuples).sum();
            prop_assert_eq!(shard_sum, b.exec.routed);
            prop_assert_eq!(a.exec.routed, b.exec.routed);
            prop_assert_eq!(a.exec.dropped, b.exec.dropped);
            prop_assert_eq!(a.exec.chains(), b.exec.chains());
            // ...and shard indices arrive merged in ascending order.
            prop_assert!(b.exec.shards.windows(2).all(|w| w[0].shard < w[1].shard));

            // Budget spend is identical: same requests drawn, same sends.
            prop_assert_eq!(a.dispatch, b.dispatch);
            prop_assert_eq!(a.tuning, b.tuning);
        }
        prop_assert_eq!(serial.handler().totals(), sharded.handler().totals());
    }
}
