//! Failure injection across the stack: corrupted responses, lossy
//! transport, sensor churn — the Section VI error-handling surface.

use craqr::core::{ErrorModel, Mitigation};
use craqr::prelude::*;
use craqr::sensing::fields::ConstantField;
use craqr::sensing::transport::{
    decode_request, decode_response, encode_request, LossyChannel, TransportError,
};
use craqr::sensing::{AcquisitionRequest, AttributeId};

fn crowd(seed: u64) -> Crowd {
    let region = Rect::with_size(4.0, 4.0);
    Crowd::new(CrowdConfig {
        region,
        population: PopulationConfig {
            size: 1_000,
            placement: Placement::Uniform,
            mobility: Mobility::RandomWalk { sigma: 0.1 },
            human_fraction: 0.0,
        },
        seed,
    })
}

#[test]
fn gps_noise_with_mitigation_keeps_stream_inside_region() {
    let mut server = CraqrServer::new(
        crowd(1),
        ServerConfig {
            error_model: ErrorModel::new(0.3, 0.0, 0.0),
            mitigation: Mitigation::standard(),
            ..Default::default()
        },
    );
    server.register_attribute("temp", false, Box::new(ConstantField(AttrValue::Float(1.0))));
    let qid = server.submit("ACQUIRE temp FROM RECT(0, 0, 4, 4) RATE 0.3").unwrap();
    let mut rejected = 0;
    for _ in 0..8 {
        let r = server.run_epoch();
        rejected += r.mitigation_rejected;
    }
    let out = server.take_output(qid);
    assert!(!out.is_empty());
    for t in &out {
        assert!(
            t.point.x >= 0.0 && t.point.x < 4.0 && t.point.y >= 0.0 && t.point.y < 4.0,
            "tuple escaped the region: ({}, {})",
            t.point.x,
            t.point.y
        );
    }
    assert!(rejected > 0, "σ=0.3 km GPS noise must push some fixes far outside");
}

#[test]
fn value_outliers_are_filtered_but_signal_survives() {
    // Heavy sensor glitches: 2% of the time mitigation's 5σ robust filter
    // must catch the 1000°C readings while keeping the 20°C signal.
    let mut server = CraqrServer::new(
        crowd(2),
        ServerConfig {
            error_model: ErrorModel::new(0.0, 0.0, 0.5),
            mitigation: Mitigation::standard(),
            ..Default::default()
        },
    );
    server.register_attribute("temp", false, Box::new(ConstantField(AttrValue::Float(20.0))));
    let qid = server.submit("ACQUIRE temp FROM RECT(0, 0, 4, 4) RATE 0.3").unwrap();
    for _ in 0..8 {
        server.run_epoch();
    }
    let out = server.take_output(qid);
    assert!(!out.is_empty());
    for t in &out {
        let v = t.value.as_float().unwrap();
        assert!((v - 20.0).abs() < 5.0, "unfiltered outlier {v}");
    }
}

#[test]
fn bool_flips_degrade_but_do_not_invert_rain_signal() {
    let mut server = CraqrServer::new(
        crowd(3),
        ServerConfig { error_model: ErrorModel::new(0.0, 0.15, 0.0), ..Default::default() },
    );
    // It always rains everywhere.
    server.register_attribute("rain", true, Box::new(ConstantField(AttrValue::Bool(true))));
    let qid = server.submit("ACQUIRE rain FROM RECT(0, 0, 4, 4) RATE 0.3").unwrap();
    for _ in 0..8 {
        server.run_epoch();
    }
    let out = server.take_output(qid);
    assert!(out.len() > 50);
    let wet = out.iter().filter(|t| t.value == AttrValue::Bool(true)).count();
    let frac = wet as f64 / out.len() as f64;
    assert!((frac - 0.85).abs() < 0.08, "15% flips → ~85% true, got {frac:.2}");
}

#[test]
fn sensor_churn_does_not_stall_acquisition() {
    let mut server = CraqrServer::new(crowd(4), ServerConfig::default());
    server.register_attribute("temp", false, Box::new(ConstantField(AttrValue::Float(5.0))));
    let qid = server.submit("ACQUIRE temp FROM RECT(0, 0, 2, 2) RATE 0.3").unwrap();
    // 20% of the crowd is replaced every epoch, mid-run, through the
    // server's world handle; delivery must continue regardless.
    let mut delivered = 0;
    let mut late_delivered = 0;
    for epoch in 0..10 {
        server.crowd_mut().churn(0.2);
        let r = server.run_epoch();
        let n: usize = r.delivered.iter().map(|(_, n)| *n).sum();
        delivered += n;
        if epoch >= 5 {
            late_delivered += n;
        }
    }
    assert!(delivered > 0);
    assert!(late_delivered > 0, "churn must not progressively stall the stream");
    assert_eq!(server.buffered_len(qid), delivered);
}

#[test]
fn churned_crowd_still_answers() {
    let mut c = crowd(5);
    c.register_field(AttributeId(0), Box::new(ConstantField(AttrValue::Float(1.0))));
    let region = c.region();
    c.dispatch_requests(AttributeId(0), &region, 200, 0.0);
    c.step(1.0);
    let before = c.drain_responses().len();
    assert!(before > 100);
    // Replace 50% of sensors mid-flight, then ask again.
    c.churn(0.5);
    c.dispatch_requests(AttributeId(0), &region, 200, 0.0);
    c.step(1.0);
    let after = c.drain_responses().len();
    assert!(after > 100, "churn must not break request handling, got {after}");
}

#[test]
fn lossy_transport_round_trip_survives_partial_loss() {
    let mut ch = LossyChannel::new(0.25, seeded_rng(6));
    let req = AcquisitionRequest { attr: AttributeId(3), issued_at: 1.0, incentive: 0.5 };
    for _ in 0..4_000 {
        ch.send(encode_request(&req));
    }
    let delivered = ch.recv_all();
    let frac = delivered.len() as f64 / 4_000.0;
    assert!((frac - 0.75).abs() < 0.03, "delivery fraction {frac}");
    for frame in delivered {
        assert_eq!(decode_request(frame).unwrap(), req);
    }
}

#[test]
fn corrupted_frames_are_rejected_not_misparsed() {
    let req = AcquisitionRequest { attr: AttributeId(3), issued_at: 1.0, incentive: 0.5 };
    let frame = encode_request(&req);
    // Truncations at every length must fail cleanly.
    for cut in 0..frame.len() {
        assert!(matches!(
            decode_request(frame.slice(0..cut)),
            Err(TransportError::Truncated) | Err(TransportError::BadTag(_))
        ));
    }
    // A request frame is not a response frame.
    assert!(matches!(decode_response(frame), Err(TransportError::BadTag(_))));
}
