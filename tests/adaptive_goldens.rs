//! The drift-scenario regression corpus — the closed loop's acceptance
//! tests.
//!
//! Each committed drift scenario (`scenarios/drift_*.toml`) injects one
//! regime shift (participation rate jump, hotspot migration, correlated
//! sensor dropout) into an otherwise-stationary world, and ships in two
//! flavours: **active** (the adaptive controller replans) and
//! **`_static`** (observe-only baseline: same estimators, same detectors,
//! no actuation). The assertions:
//!
//! 1. report *and* adaptive trace are byte-identical across
//!    `ExecMode::Serial` and `Sharded(4)`, and across reruns;
//! 2. both match their committed goldens
//!    (`tests/goldens/<name>.golden.txt` / `<name>.trace.txt`);
//! 3. the active trace shows ≥ 1 replan within [`REACT_WITHIN`] epochs of
//!    the injected shift — and the static twin shows none.
//!
//! Re-bless after an intentional behaviour change with:
//!
//! ```text
//! cargo run --release --bin craqr-scenario -- --all scenarios --bless
//! ```

use craqr::core::ExecMode;
use craqr::scenario::{AdaptiveTrace, ScenarioReport, ScenarioRunner};
use std::path::Path;

/// A replan counts as "reacting" when it lands within this many epochs of
/// the injected shift.
const REACT_WITHIN: u64 = 5;

/// The committed drift scenarios: (file stem, shift epoch).
const DRIFT_SCENARIOS: [(&str, u64); 3] =
    [("drift_rate_jump", 9), ("drift_hotspot_migration", 8), ("drift_sensor_dropout", 8)];

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn runner(stem: &str) -> ScenarioRunner {
    let path = repo_root().join("scenarios").join(format!("{stem}.toml"));
    ScenarioRunner::from_file(&path).unwrap_or_else(|e| panic!("{e}"))
}

/// Runs `stem` under both exec modes, asserts report + trace byte-identity
/// across modes, and returns the serial pair.
fn run_both_modes(stem: &str) -> (ScenarioReport, AdaptiveTrace) {
    let runner = runner(stem);
    let serial_out =
        runner.run_full(ExecMode::Serial, runner.spec().seed).unwrap_or_else(|e| panic!("{e}"));
    let sharded_out =
        runner.run_full(ExecMode::Sharded(4), runner.spec().seed).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(
        serial_out.report.canonical(),
        sharded_out.report.canonical(),
        "{stem}: serial and Sharded(4) reports diverge"
    );
    let serial_trace = serial_out.trace.unwrap_or_else(|| panic!("{stem}: no adaptive trace"));
    let sharded_trace = sharded_out.trace.unwrap_or_else(|| panic!("{stem}: no adaptive trace"));
    assert_eq!(
        serial_trace.canonical(),
        sharded_trace.canonical(),
        "{stem}: serial and Sharded(4) adaptive traces diverge"
    );
    // The run log (when the spec records one) is held to the same
    // mode-independence bar: the inputs a run consumed do not depend on
    // how the process phase was scheduled.
    assert_eq!(
        serial_out.log.as_ref().map(|l| l.canonical()),
        sharded_out.log.as_ref().map(|l| l.canonical()),
        "{stem}: serial and Sharded(4) run logs diverge"
    );
    (serial_out.report, serial_trace)
}

fn golden(name: &str) -> String {
    let path = repo_root().join("tests/goldens").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); bless with \
             `cargo run --release --bin craqr-scenario -- --all scenarios --bless`",
            path.display()
        )
    })
}

#[test]
fn drift_reports_and_traces_match_goldens_in_both_modes() {
    for (stem, _) in DRIFT_SCENARIOS {
        for variant in [stem.to_string(), format!("{stem}_static")] {
            let (report, trace) = run_both_modes(&variant);
            assert_eq!(
                golden(&format!("{variant}.golden.txt")),
                report.canonical(),
                "{variant}: report no longer matches its golden; re-bless if intentional"
            );
            assert_eq!(
                golden(&format!("{variant}.trace.txt")),
                trace.canonical(),
                "{variant}: adaptive trace no longer matches its golden; re-bless if intentional"
            );
            // The report's [adaptive] section pins the trace.
            let section = report.adaptive.expect("adaptive section present");
            assert_eq!(section.summary.trace_checksum, trace.checksum(), "{variant}");
            assert_eq!(section.summary.replans, trace.replans.len(), "{variant}");
        }
    }
}

#[test]
fn controller_reacts_to_the_shift_and_the_static_baseline_does_not() {
    for (stem, shift_epoch) in DRIFT_SCENARIOS {
        let (report, trace) = run_both_modes(stem);
        assert!(
            !trace.replans.is_empty(),
            "{stem}: the controller never replanned\n{}",
            trace.canonical()
        );
        let first = trace.replans[0].epoch;
        assert!(
            (shift_epoch..=shift_epoch + REACT_WITHIN).contains(&first),
            "{stem}: first replan at epoch {first}, want within {REACT_WITHIN} of the \
             shift at {shift_epoch}\n{}",
            trace.canonical()
        );
        assert!(report.adaptive.expect("section").active);

        let (static_report, static_trace) = run_both_modes(&format!("{stem}_static"));
        assert_eq!(
            static_trace.replans.len(),
            0,
            "{stem}_static: observe-only baseline must never replan\n{}",
            static_trace.canonical()
        );
        assert!(!static_report.adaptive.expect("section").active);
        // The static twin still *sees* the drift — it just does not act.
        assert!(
            static_trace.drift_events() >= 1,
            "{stem}_static: the detector should still fire in observe mode\n{}",
            static_trace.canonical()
        );
        // And the active run's world genuinely diverged from the static one.
        assert_ne!(
            report.checksum(),
            static_report.checksum(),
            "{stem}: replanning had no observable effect"
        );
    }
}

#[test]
fn drift_runs_are_bit_stable_across_reruns() {
    for (stem, _) in DRIFT_SCENARIOS {
        let (a_report, a_trace) = run_both_modes(stem);
        let (b_report, b_trace) = run_both_modes(stem);
        assert_eq!(a_report, b_report, "{stem}: reports differ across reruns");
        assert_eq!(a_trace, b_trace, "{stem}: traces differ across reruns");
    }
}

#[test]
fn seed_override_changes_decisions_deterministically() {
    let runner = runner("drift_sensor_dropout");
    for seed in [1u64, 99] {
        let serial = runner.run_full(ExecMode::Serial, seed).unwrap();
        let sharded = runner.run_full(ExecMode::Sharded(3), seed).unwrap();
        assert_eq!(serial.report.canonical(), sharded.report.canonical(), "seed {seed}");
        assert_eq!(
            serial.trace.expect("trace").canonical(),
            sharded.trace.expect("trace").canonical(),
            "seed {seed}"
        );
    }
}
