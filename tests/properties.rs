//! Cross-crate property tests: PMAT operator contracts and planner
//! invariants under randomized inputs.

use craqr::core::ops::{EstimatorMode, FlattenConfig, FlattenOp};
use craqr::core::plan::PlannerConfig;
use craqr::core::{AcquisitionQuery, Fabricator, PartitionOp, ThinOp, UnionOp};
use craqr::engine::{Emitter, InputPort, Operator};
use craqr::prelude::*;
use craqr::sensing::{AttrValue, AttributeId, SensorId};
use proptest::prelude::*;

fn tuple_at(id: u64, t: f64, x: f64, y: f64) -> CrowdTuple {
    CrowdTuple {
        id,
        attr: AttributeId(0),
        point: SpaceTimePoint::new(t, x, y),
        value: AttrValue::Bool(true),
        sensor: SensorId(0),
    }
}

fn run_op<O: Operator<CrowdTuple>>(op: &mut O, batch: &[CrowdTuple]) -> Vec<Vec<CrowdTuple>> {
    let mut em = Emitter::new(op.output_ports());
    op.process(InputPort(0), batch, &mut em);
    em.into_buffers()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Thinning keeps each tuple independently with probability λ2/λ1; the
    /// kept fraction concentrates around it (Chernoff-ish 5σ slack).
    #[test]
    fn thin_keeps_expected_fraction(
        lambda1 in 1.0f64..20.0,
        ratio in 0.05f64..1.0,
        seed in any::<u64>(),
    ) {
        let lambda2 = lambda1 * ratio;
        let mut op = ThinOp::new(lambda1, lambda2, seed);
        let n = 8_000usize;
        let batch: Vec<CrowdTuple> =
            (0..n).map(|i| tuple_at(i as u64, i as f64, 0.5, 0.5)).collect();
        let kept = run_op(&mut op, &batch).remove(0).len() as f64;
        let expect = ratio * n as f64;
        let sd = (n as f64 * ratio * (1.0 - ratio)).sqrt().max(1.0);
        prop_assert!(
            (kept - expect).abs() < 5.0 * sd + 1.0,
            "kept {kept}, expected {expect} ± {sd}"
        );
    }

    /// Thinning never invents, duplicates, or reorders tuples.
    #[test]
    fn thin_output_is_an_ordered_subset(
        seed in any::<u64>(),
        n in 1usize..500,
    ) {
        let mut op = ThinOp::new(2.0, 1.0, seed);
        let batch: Vec<CrowdTuple> =
            (0..n).map(|i| tuple_at(i as u64, i as f64, 0.1, 0.1)).collect();
        let out = run_op(&mut op, &batch).remove(0);
        let ids: Vec<u64> = out.iter().map(|t| t.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(&ids, &sorted, "subset must stay ordered and unique");
        prop_assert!(out.len() <= n);
    }

    /// Partition + union over a random split is lossless for in-region
    /// tuples.
    #[test]
    fn partition_union_round_trip(
        split in 0.1f64..0.9,
        n in 1usize..400,
        seed in any::<u64>(),
    ) {
        let cell = Rect::with_size(1.0, 1.0);
        let (west, east) = cell.split_at_x(split).expect("interior split");
        let mut rng = seeded_rng(seed);
        let batch: Vec<CrowdTuple> = (0..n)
            .map(|i| {
                use rand::Rng;
                tuple_at(i as u64, i as f64, rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0))
            })
            .collect();

        let mut p = PartitionOp::binary(west, east);
        let halves = run_op(&mut p, &batch);
        prop_assert_eq!(halves[0].len() + halves[1].len(), n, "partition is exhaustive");

        let mut u = UnionOp::binary(west, east);
        let mut em = Emitter::new(u.output_ports());
        u.process(InputPort(0), &halves[0], &mut em);
        u.process(InputPort(1), &halves[1], &mut em);
        let rejoined = em.into_buffers().remove(0);
        prop_assert_eq!(rejoined.len(), n, "union is lossless");
        let mut ids: Vec<u64> = rejoined.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        let want: Vec<u64> = (0..n as u64).collect();
        prop_assert_eq!(ids, want);
    }

    /// Flatten's retained count never exceeds the batch and stays near the
    /// target when the batch is abundant.
    #[test]
    fn flatten_respects_target_count(
        target_rate in 0.05f64..0.5,
        seed in any::<u64>(),
    ) {
        let cell = Rect::with_size(4.0, 4.0);
        let (mut op, report) = FlattenOp::new(FlattenConfig {
            cell,
            batch_duration: 10.0,
            target_rate,
            mode: EstimatorMode::BatchMle,
            seed,
        });
        let window = SpaceTimeWindow::new(cell, 0.0, 10.0);
        let pts = HomogeneousMdpp::new(2.0, cell).sample(&window, &mut seeded_rng(seed));
        let batch: Vec<CrowdTuple> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| tuple_at(i as u64, p.t, p.x, p.y))
            .collect();
        let out = run_op(&mut op, &batch).remove(0);
        prop_assert!(out.len() <= batch.len());
        let target = target_rate * window.volume();
        let sd = target.sqrt().max(1.0);
        prop_assert!(
            (out.len() as f64 - target).abs() < 6.0 * sd,
            "kept {} vs target {target}",
            out.len()
        );
        prop_assert!(report.last_nv() < 20.0, "abundant batch should rarely violate");
    }

    /// Random insert/delete sequences preserve every chain invariant and
    /// end empty.
    #[test]
    fn planner_survives_random_query_churn(
        ops in prop::collection::vec((0.2f64..8.0, 0u8..4, 0u8..4), 1..24),
        seed in any::<u64>(),
    ) {
        let mut fab = Fabricator::new(
            Rect::with_size(4.0, 4.0),
            PlannerConfig { grid_side: 4, seed, ..Default::default() },
        );
        let mut live: Vec<QueryId> = Vec::new();
        for (rate, qx, qy) in ops {
            // Insert a 1–2 cell query at a random grid-aligned spot.
            let x0 = qx as f64;
            let y0 = qy as f64;
            let x1 = (x0 + 1.0 + (qx % 2) as f64).min(4.0);
            let query = AcquisitionQuery::new(AttributeId(0), Rect::new(x0, y0, x1, y0 + 1.0), rate);
            let qid = fab.insert_query(query).expect("grid-aligned query plans");
            live.push(qid);
            // Every third insert, delete the oldest standing query.
            if live.len().is_multiple_of(3) {
                let victim = live.remove(0);
                fab.delete_query(victim).expect("victim standing");
            }
            // Invariants are asserted inside the chain on every mutation;
            // additionally check global consistency here.
            for qid in &live {
                prop_assert!(fab.query_plan(*qid).is_some());
            }
        }
        for qid in live {
            fab.delete_query(qid).expect("standing");
        }
        prop_assert_eq!(fab.materialized_cells(), 0);
        prop_assert_eq!(fab.materialized_chains(), 0);
    }

    /// The declarative parser and the typed constructor agree.
    #[test]
    fn parser_round_trips_typed_queries(
        x0 in 0.0f64..3.0,
        y0 in 0.0f64..3.0,
        w in 0.5f64..2.0,
        h in 0.5f64..2.0,
        rate in 0.01f64..100.0,
    ) {
        use craqr::core::query::parse_query;
        let mut catalog = AttributeCatalog::new();
        let attr = catalog.register("temp", false);
        let text = format!(
            "ACQUIRE temp FROM RECT({x0}, {y0}, {}, {}) RATE {rate}",
            x0 + w,
            y0 + h
        );
        let parsed = parse_query(&text, &catalog).expect("valid text");
        prop_assert_eq!(parsed.attr, attr);
        prop_assert!((parsed.rate - rate).abs() < 1e-12);
        prop_assert!(parsed.region.approx_eq(&Rect::new(x0, y0, x0 + w, y0 + h)));
    }
}
