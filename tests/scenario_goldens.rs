//! The golden-output regression corpus.
//!
//! Every spec under `scenarios/` runs under both execution modes; the two
//! canonical reports must be **byte-identical** (the sharded-executor
//! determinism contract) and must match the committed golden under
//! `tests/goldens/<name>.golden.txt` byte-for-byte. Regenerate goldens
//! after an intentional behaviour change with:
//!
//! ```text
//! cargo run --release --bin craqr-scenario -- scenarios/*.toml scenarios/*.json --bless
//! ```

use craqr::core::ExecMode;
use craqr::scenario::{ScenarioRunner, ScenarioSpec};
use std::path::{Path, PathBuf};

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

/// Every committed scenario spec, sorted by file name.
fn scenario_files() -> Vec<PathBuf> {
    craqr::scenario::scenario_files(&repo_root().join("scenarios")).expect("scenarios dir")
}

fn load(path: &Path) -> ScenarioSpec {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    ScenarioSpec::from_source(&path.to_string_lossy(), &src)
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn corpus_has_the_committed_scenarios() {
    let names: Vec<String> = scenario_files().iter().map(|p| load(p).name).collect();
    for expected in [
        "baseline_temp",
        "budget_starved",
        "churn_heavy",
        "drift_hotspot_migration",
        "drift_hotspot_migration_static",
        "drift_rate_jump",
        "drift_rate_jump_static",
        "drift_sensor_dropout",
        "drift_sensor_dropout_static",
        "hotspot_burst",
        "rain_sweep",
        "sparse_large_grid",
        "telemetry_probe",
        "tenant_drift_pools",
        "tenant_starved_reject",
    ] {
        assert!(names.iter().any(|n| n == expected), "scenario '{expected}' missing from corpus");
    }
    assert!(names.len() >= 14, "corpus shrank: {names:?}");
}

#[test]
fn serial_and_sharded_match_the_goldens() {
    for path in scenario_files() {
        let spec = load(&path);
        let name = spec.name.clone();
        let runner = ScenarioRunner::new(spec).expect("committed specs are valid");

        let serial = runner.run(ExecMode::Serial).unwrap_or_else(|e| panic!("{name}: {e}"));
        let sharded = runner.run(ExecMode::Sharded(4)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            serial.canonical(),
            sharded.canonical(),
            "{name}: serial and Sharded(4) reports diverge — the executor determinism \
             contract is broken"
        );

        let golden_path = repo_root().join("tests/goldens").join(format!("{name}.golden.txt"));
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "{name}: missing golden {} ({e}); bless it with \
                 `cargo run --release --bin craqr-scenario -- scenarios/* --bless`",
                golden_path.display()
            )
        });
        assert_eq!(
            golden,
            serial.canonical(),
            "{name}: report no longer matches {}; if the change is intentional, re-bless",
            golden_path.display()
        );
    }
}

#[test]
fn determinism_holds_across_seed_overrides() {
    // The CI determinism job re-checks this through the CLI; this inline
    // version keeps the property under plain `cargo test` too.
    let path = repo_root().join("scenarios/baseline_temp.toml");
    let runner = ScenarioRunner::new(load(&path)).unwrap();
    for seed in [1u64, 0xDEAD_BEEF] {
        let serial = runner.run_with_seed(ExecMode::Serial, seed).unwrap();
        let sharded = runner.run_with_seed(ExecMode::Sharded(3), seed).unwrap();
        assert_eq!(serial.canonical(), sharded.canonical(), "seed {seed}");
        assert_eq!(serial.checksum(), sharded.checksum(), "seed {seed}");
    }
}

#[test]
fn reruns_are_bit_stable() {
    // Two independent runs of the same (spec, seed, mode) are identical —
    // nothing leaks between runs through the runner.
    let path = repo_root().join("scenarios/hotspot_burst.toml");
    let runner = ScenarioRunner::new(load(&path)).unwrap();
    let a = runner.run(ExecMode::Sharded(2)).unwrap();
    let b = runner.run(ExecMode::Sharded(2)).unwrap();
    assert_eq!(a, b);
}
