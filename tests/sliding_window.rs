//! The sliding-window flatten variant through the whole server stack.
//!
//! "The flattening operation can also be performed over sliding windows, as
//! opposed to batches. This can be done using online parameter estimation
//! algorithms like stochastic gradient descent" (§IV-B.1). These tests run
//! the server with `EstimatorMode::Sgd` and the nonparametric histogram
//! estimator, and check they deliver comparable streams to the batch-MLE
//! default.

use craqr::core::ops::EstimatorMode;
use craqr::core::plan::PlannerConfig;
use craqr::prelude::*;
use craqr::sensing::fields::ConstantField;

fn run_with(estimator: EstimatorMode, seed: u64) -> (usize, f64) {
    let region = Rect::with_size(4.0, 4.0);
    let crowd = Crowd::new(CrowdConfig {
        region,
        population: PopulationConfig {
            size: 1_200,
            placement: Placement::Hotspots { spots: vec![(1.0, 1.0, 6.0, 0.8)], floor: 1.0 },
            mobility: Mobility::RandomWalk { sigma: 0.08 },
            human_fraction: 0.0,
        },
        seed,
    });
    let mut server = CraqrServer::new(
        crowd,
        ServerConfig {
            initial_budget: 40.0,
            planner: PlannerConfig { estimator, ..Default::default() },
            ..Default::default()
        },
    );
    server.register_attribute("temp", false, Box::new(ConstantField(AttrValue::Float(20.0))));
    let qid = server.submit("ACQUIRE temp FROM RECT(0, 0, 4, 4) RATE 0.3").unwrap();

    // Warm-up (budgets + online estimators), then measure.
    for _ in 0..8 {
        server.run_epoch();
    }
    server.take_output(qid);
    let start = server.now();
    for _ in 0..16 {
        server.run_epoch();
    }
    let out = server.take_output(qid);
    let minutes = server.now() - start;
    (out.len(), out.len() as f64 / (16.0 * minutes))
}

#[test]
fn sgd_sliding_window_delivers_the_requested_rate() {
    let (n, rate) = run_with(EstimatorMode::Sgd(Default::default()), 51);
    assert!(n > 100, "need a meaningful stream, got {n}");
    assert!((rate - 0.3).abs() / 0.3 < 0.4, "sgd rate {rate} vs requested 0.3");
}

#[test]
fn histogram_estimator_delivers_the_requested_rate() {
    let (n, rate) = run_with(EstimatorMode::Histogram { bins: 3 }, 52);
    assert!(n > 100, "need a meaningful stream, got {n}");
    assert!((rate - 0.3).abs() / 0.3 < 0.4, "histogram rate {rate} vs requested 0.3");
}

#[test]
fn estimator_modes_agree_with_batch_mle() {
    let (_, mle) = run_with(EstimatorMode::BatchMle, 53);
    let (_, sgd) = run_with(EstimatorMode::Sgd(Default::default()), 53);
    let (_, hist) = run_with(EstimatorMode::Histogram { bins: 3 }, 53);
    for (name, rate) in [("sgd", sgd), ("histogram", hist)] {
        assert!((rate - mle).abs() / mle < 0.5, "{name} rate {rate} too far from batch MLE {mle}");
    }
}
