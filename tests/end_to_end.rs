//! Server-level end-to-end scenarios: the full Fig. 1 loop against the
//! simulated crowd, checking the paper's core promise — user-specified
//! spatio-temporal rates are met in a probabilistic sense — plus budget
//! adaptation and topology sharing.

use craqr::core::plan::PlannerConfig;
use craqr::core::BudgetTuner;
use craqr::prelude::*;
use craqr::sensing::fields::ConstantField;

fn city_crowd(size: usize, human_fraction: f64, seed: u64) -> Crowd {
    let region = Rect::with_size(4.0, 4.0);
    Crowd::new(CrowdConfig {
        region,
        population: PopulationConfig {
            size,
            placement: Placement::city(&region),
            mobility: Mobility::random_waypoint(0.08, 5.0),
            human_fraction,
        },
        seed,
    })
}

#[test]
fn requested_rate_is_met_after_warmup() {
    let mut server = CraqrServer::new(
        city_crowd(1_200, 0.0, 21),
        ServerConfig { initial_budget: 30.0, ..Default::default() },
    );
    server.register_attribute("temp", false, Box::new(TemperatureField::city_default()));
    let qid = server.submit("ACQUIRE temp FROM RECT(0, 0, 2, 2) RATE 0.5").unwrap();

    // Warm up 6 epochs (budget settling), then measure 12.
    for _ in 0..6 {
        server.run_epoch();
    }
    server.take_output(qid);
    let start = server.now();
    for _ in 0..12 {
        server.run_epoch();
    }
    let out = server.take_output(qid);
    let minutes = server.now() - start;
    let achieved = out.len() as f64 / (4.0 * minutes);
    let rel = (achieved - 0.5).abs() / 0.5;
    assert!(rel < 0.35, "achieved {achieved:.3} vs 0.5 (rel {rel:.2})");
}

#[test]
fn overlapping_queries_share_operators_and_both_get_their_rates() {
    let mut server = CraqrServer::new(
        city_crowd(1_500, 0.0, 22),
        ServerConfig { initial_budget: 40.0, ..Default::default() },
    );
    let attr = server.register_attribute("temp", false, Box::new(TemperatureField::city_default()));
    let fast = server.submit("ACQUIRE temp FROM RECT(0, 0, 2, 2) RATE 0.8").unwrap();
    let slow = server.submit("ACQUIRE temp FROM RECT(0, 0, 2, 2) RATE 0.2").unwrap();

    // Shared chain: one F, two taps in every covered cell.
    let chain = server.fabricator().chain(CellId::new(0, 0), attr).expect("cell materialized");
    assert_eq!(chain.tap_rates(), vec![0.8, 0.2]);

    for _ in 0..6 {
        server.run_epoch();
    }
    server.take_output(fast);
    server.take_output(slow);
    let start = server.now();
    for _ in 0..12 {
        server.run_epoch();
    }
    let minutes = server.now() - start;
    let fast_rate = server.take_output(fast).len() as f64 / (4.0 * minutes);
    let slow_rate = server.take_output(slow).len() as f64 / (4.0 * minutes);
    assert!((fast_rate - 0.8).abs() / 0.8 < 0.4, "fast {fast_rate:.3}");
    assert!((slow_rate - 0.2).abs() / 0.2 < 0.4, "slow {slow_rate:.3}");
    assert!(fast_rate > slow_rate * 2.0, "rate ordering must hold");
}

#[test]
fn budget_rises_under_starvation_and_falls_under_plenty() {
    // Sparse crowd: the initial budget cannot satisfy the rate → N_v high
    // → budget climbs. Then the same server with a generous budget must
    // trim it back down.
    let mut server = CraqrServer::new(
        city_crowd(80, 0.0, 23),
        ServerConfig {
            initial_budget: 4.0,
            tuner: BudgetTuner { delta: 4.0, ..Default::default() },
            ..Default::default()
        },
    );
    let attr = server.register_attribute("temp", false, Box::new(TemperatureField::city_default()));
    server.submit("ACQUIRE temp FROM RECT(0, 0, 1, 1) RATE 6").unwrap();
    let cell = CellId::new(0, 0);
    server.run_epoch();
    let early = server.handler().budget_of(cell, attr).unwrap();
    for _ in 0..8 {
        server.run_epoch();
    }
    let late = server.handler().budget_of(cell, attr).unwrap();
    assert!(late > early, "starved budget must rise: {early} → {late}");

    // Plenty: big, uniformly spread, stationary crowd and a tiny rate, so
    // the queried cell is never accidentally empty (a mobile city crowd can
    // vacate a corner cell for a whole epoch, which correctly *raises* the
    // budget — that is the other branch, tested above).
    let region = Rect::with_size(4.0, 4.0);
    let plenty = Crowd::new(CrowdConfig {
        region,
        population: PopulationConfig {
            size: 2_000,
            placement: Placement::Uniform,
            mobility: Mobility::Stationary,
            human_fraction: 0.0,
        },
        seed: 24,
    });
    let mut server =
        CraqrServer::new(plenty, ServerConfig { initial_budget: 60.0, ..Default::default() });
    let attr = server.register_attribute("temp", false, Box::new(TemperatureField::city_default()));
    server.submit("ACQUIRE temp FROM RECT(0, 0, 1, 1) RATE 0.05").unwrap();
    server.run_epoch();
    let early = server.handler().budget_of(CellId::new(0, 0), attr).unwrap();
    for _ in 0..8 {
        server.run_epoch();
    }
    let late = server.handler().budget_of(CellId::new(0, 0), attr).unwrap();
    assert!(late < early, "over-provisioned budget must fall: {early} → {late}");
}

#[test]
fn human_sensed_rain_values_are_geographically_consistent() {
    let mut server = CraqrServer::new(city_crowd(1_000, 1.0, 25), ServerConfig::default());
    // Static rain band over the western half.
    server.register_attribute("rain", true, Box::new(RainFront::new(2.0, 0.0, 2.0)));
    let qid = server.submit("ACQUIRE rain FROM RECT(0, 0, 4, 4) RATE 0.2").unwrap();
    for _ in 0..10 {
        server.run_epoch();
    }
    let out = server.take_output(qid);
    assert!(!out.is_empty(), "humans eventually answer");
    for t in &out {
        let expected = t.point.x < 2.0;
        assert_eq!(t.value, AttrValue::Bool(expected), "wrong rain value at x={}", t.point.x);
    }
}

#[test]
fn fabricated_stream_is_approximately_homogeneous() {
    // The whole point of flatten: even with a heavily skewed crowd, the
    // delivered stream should look homogeneous over the query region.
    let region = Rect::with_size(4.0, 4.0);
    let crowd = Crowd::new(CrowdConfig {
        region,
        population: PopulationConfig {
            size: 3_000,
            // Extreme hotspot in one corner.
            placement: Placement::Hotspots { spots: vec![(0.5, 0.5, 9.0, 0.6)], floor: 1.0 },
            mobility: Mobility::RandomWalk { sigma: 0.05 },
            human_fraction: 0.0,
        },
        seed: 26,
    });
    let mut server = CraqrServer::new(
        crowd,
        ServerConfig {
            initial_budget: 60.0,
            planner: PlannerConfig { grid_side: 2, ..Default::default() },
            ..Default::default()
        },
    );
    server.register_attribute("temp", false, Box::new(ConstantField(AttrValue::Float(20.0))));
    let qid = server.submit("ACQUIRE temp FROM RECT(0, 0, 4, 4) RATE 0.4").unwrap();

    for _ in 0..6 {
        server.run_epoch();
    }
    server.take_output(qid); // discard warmup
    let start = server.now();
    for _ in 0..16 {
        server.run_epoch();
    }
    let out = server.take_output(qid);
    assert!(out.len() > 100, "need a meaningful sample, got {}", out.len());
    let window = SpaceTimeWindow::new(region, start, server.now());
    let points: Vec<SpaceTimePoint> = out.iter().map(|t| t.point).collect();
    let rep = homogeneity_report(&points, &window, 2, 2);
    // The raw crowd is ~9:1 corner-skewed; the fabricated stream must be
    // far flatter. CV under 0.5 with a 2×2 spatial binning is a strong
    // flattening signal (the skew alone would push it near 1.5).
    assert!(rep.count_cv < 0.6, "count CV {}", rep.count_cv);
}

#[test]
fn epoch_reports_are_internally_consistent() {
    let mut server = CraqrServer::new(city_crowd(500, 0.2, 27), ServerConfig::default());
    server.register_attribute("temp", false, Box::new(TemperatureField::city_default()));
    let qid = server.submit("ACQUIRE temp FROM RECT(0, 0, 2, 2) RATE 0.3").unwrap();
    let mut delivered_sum = 0;
    for i in 0..8 {
        let report = server.run_epoch();
        assert_eq!(report.epoch, i);
        assert!((report.now - (i + 1) as f64 * 5.0).abs() < 1e-9);
        assert!(report.ingested <= report.responses);
        delivered_sum += report.delivered.iter().map(|(_, n)| *n).sum::<usize>();
    }
    assert_eq!(server.buffered_len(qid), delivered_sum);
}
