//! The byte-inertness contract of instrumentation: switching the full
//! telemetry stack on — collector, phase timer, engine clock, timed
//! control hook — must leave every checksummed artifact of every
//! committed scenario **byte-identical** to an uninstrumented run.
//!
//! This is the run-level counterpart of the `busy_ns` rule: anything a
//! clock touched is structurally excluded from canonical renderings, so
//! a golden blessed without `--metrics` stays valid under `--metrics`
//! and vice versa. If this test fails, a timing-tier metric leaked into a
//! checksummed surface (or collection perturbed the run itself).

use craqr::core::ExecMode;
use craqr::scenario::{ScenarioRunner, ScenarioSpec};
use craqr::telemetry::lint_exposition;
use std::path::{Path, PathBuf};

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn scenario_files() -> Vec<PathBuf> {
    craqr::scenario::scenario_files(&repo_root().join("scenarios")).expect("scenarios dir")
}

fn load(path: &Path) -> ScenarioRunner {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let spec = ScenarioSpec::from_source(&path.to_string_lossy(), &src)
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    ScenarioRunner::new(spec).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn instrumentation_is_byte_inert_on_every_committed_scenario() {
    for path in scenario_files() {
        let runner = load(&path);
        let seed = runner.spec().seed;
        let name = runner.spec().name.clone();
        for exec in [ExecMode::Serial, ExecMode::Sharded(4)] {
            let plain = runner.run_full(exec, seed).expect("uninstrumented run");
            let timed = runner.run_full_instrumented(exec, seed).expect("instrumented run");
            assert_eq!(
                plain.report.canonical(),
                timed.report.canonical(),
                "{name} [{exec:?}]: instrumentation changed the canonical report"
            );
            assert_eq!(
                plain.trace.as_ref().map(|t| t.canonical()),
                timed.trace.as_ref().map(|t| t.canonical()),
                "{name} [{exec:?}]: instrumentation changed the adaptive trace"
            );
            assert_eq!(
                plain.log.as_ref().map(|l| l.canonical()),
                timed.log.as_ref().map(|l| l.canonical()),
                "{name} [{exec:?}]: instrumentation changed the run log"
            );
            // The instrumented run always carries a registry, its event
            // tier matches what an event-only collector would have seen
            // (same canonical section), and the full exposition passes
            // the Prometheus lint.
            let telemetry = timed.telemetry.as_ref().expect("instrumented run has a registry");
            if let Some(plain_t) = plain.telemetry.as_ref() {
                assert_eq!(
                    plain_t.section(),
                    telemetry.section(),
                    "{name} [{exec:?}]: the timing tier leaked into the event section"
                );
            }
            if let Err(errors) = lint_exposition(&telemetry.render_prometheus()) {
                panic!("{name} [{exec:?}]: exposition failed lint: {errors:?}");
            }
        }
    }
}

#[test]
fn committed_goldens_match_instrumented_runs_byte_for_byte() {
    // The committed goldens were blessed by uninstrumented runs; an
    // instrumented run must reproduce them exactly (this is what makes
    // `--metrics` safe to add to any golden-checked CI invocation).
    for path in scenario_files() {
        let runner = load(&path);
        let seed = runner.spec().seed;
        let name = runner.spec().name.clone();
        let golden_path = repo_root().join("tests/goldens").join(format!("{name}.golden.txt"));
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("{}: {e}", golden_path.display()));
        let timed = runner.run_full_instrumented(ExecMode::Serial, seed).expect("run");
        assert_eq!(
            golden,
            timed.report.canonical(),
            "{name}: instrumented run diverged from the committed golden"
        );
    }
}
