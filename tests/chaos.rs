//! The chaos tier — kill the server at every crash point of every epoch
//! and prove the crash-safe run log brings it back byte-identical.
//!
//! The scenario under fire is the committed `fault_flaky_crowd` spec:
//! drop/delay/duplicate fault windows, a retry policy topping up starved
//! chains, and two tenant pools whose conservation laws must survive the
//! recovery. For each `(crash point, epoch)` cell of the kill matrix:
//!
//! 1. [`ScenarioRunner::run_to_crash`] streams the run to a real file
//!    with per-epoch fsync and dies at the injected point — including
//!    `mid-log-append`, which tears the file mid-record;
//! 2. [`craqr::runlog::parse_salvage`] recovers the longest valid
//!    checksummed prefix, which must hold *exactly* the epochs that were
//!    durable at the kill (the fsync discipline's whole promise);
//! 3. [`craqr::scenario::resume`] verifies the salvaged prefix
//!    record-by-record and continues live to the horizon;
//! 4. the recovered report and trace checksums must equal the
//!    uninterrupted run's — not approximately, byte-for-byte — and the
//!    per-tenant budget laws must hold as if nothing had happened.
//!
//! A second pass runs crash + recovery under `ExecMode::Sharded(4)`
//! against the *serial* reference, so recovery is also mode-portable:
//! you can crash on a laptop and resume on a many-core box.

use craqr::core::{CrashPoint, ExecMode};
use craqr::runlog::parse_salvage;
use craqr::scenario::{resume, RunOutput, ScenarioRunner};
use std::path::{Path, PathBuf};

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn runner(stem: &str) -> ScenarioRunner {
    ScenarioRunner::from_file(&repo_root().join("scenarios").join(format!("{stem}.toml")))
        .expect("committed scenario must load")
}

/// A per-test scratch directory; removed on drop so green runs leave no
/// litter, while a panic keeps the torn artifact for post-mortems.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("craqr-chaos-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn log_path(&self, point: CrashPoint, epoch: u32) -> PathBuf {
        self.0.join(format!("kill.{}.e{epoch}.runlog.txt", point.name()))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

/// Kills at `(point, epoch)` under `exec`, salvages the torn file, and
/// resumes to the horizon. Panics if the salvage holds anything other
/// than the durable prefix.
fn kill_salvage_resume(
    runner: &ScenarioRunner,
    exec: ExecMode,
    point: CrashPoint,
    epoch: u32,
    path: &Path,
) -> RunOutput {
    let durable =
        runner.run_to_crash(exec, runner.spec().seed, point, epoch, path).unwrap_or_else(|e| {
            panic!("crash run {point} @ epoch {epoch}: {e}");
        });
    assert_eq!(
        durable, epoch as usize,
        "{point} @ epoch {epoch}: every crash point kills before the epoch's block is durable"
    );
    let src = std::fs::read_to_string(path).unwrap();
    let salvage = parse_salvage(&src)
        .unwrap_or_else(|e| panic!("{point} @ epoch {epoch}: nothing salvageable: {e}"));
    assert_eq!(
        salvage.log.epochs.len(),
        durable,
        "{point} @ epoch {epoch}: salvage must keep exactly the durable epochs"
    );
    let torn = salvage.torn.unwrap_or_else(|| {
        panic!("{point} @ epoch {epoch}: a killed stream can never look sealed")
    });
    if point == CrashPoint::MidLogAppend {
        assert!(
            torn.discarded_bytes > 0,
            "mid-log-append @ epoch {epoch} tears mid-record; salvage must discard the fragment"
        );
    }
    if point != CrashPoint::MidLogAppend {
        assert_eq!(
            torn.discarded_bytes, 0,
            "{point} @ epoch {epoch} dies between appends; the file ends on a clean boundary"
        );
    }
    resume(&salvage.log, exec, durable)
        .unwrap_or_else(|e| panic!("{point} @ epoch {epoch}: resume: {e}"))
}

/// Byte-level recovery identity plus the budget conservation laws, per
/// tenant, exactly as an uninterrupted run must satisfy them.
fn assert_recovered(reference: &RunOutput, recovered: &RunOutput, what: &str) {
    assert_eq!(
        recovered.report.checksum(),
        reference.report.checksum(),
        "{what}: recovered report diverges from the uninterrupted run"
    );
    assert_eq!(
        recovered.trace.as_ref().map(|t| t.checksum()),
        reference.trace.as_ref().map(|t| t.checksum()),
        "{what}: recovered trace diverges from the uninterrupted run"
    );
    let (Some(want), Some(got)) = (&reference.log, &recovered.log) else {
        panic!("{what}: both the reference and the resumed run must regenerate a run log");
    };
    assert_eq!(
        got.canonical(),
        want.canonical(),
        "{what}: the resumed run's regenerated log is not byte-identical"
    );
    let epochs = recovered.report.epochs.len() as f64;
    if let Some(tenants) = &recovered.report.tenants {
        for row in &tenants.rows {
            assert!(
                row.peak_epoch_charge <= row.capacity + 1e-9,
                "{what}: tenant '{}' charged {} in one epoch against capacity {}",
                row.name,
                row.peak_epoch_charge,
                row.capacity
            );
            assert!(
                row.committed <= row.capacity + 1e-9,
                "{what}: tenant '{}' committed {} against capacity {}",
                row.name,
                row.committed,
                row.capacity
            );
            assert!(
                row.charged <= row.capacity * epochs + 1e-9,
                "{what}: tenant '{}' charged {} over {} epochs against capacity {}",
                row.name,
                row.charged,
                epochs,
                row.capacity
            );
        }
        // The admission audit predates epoch 0, so every recovery must
        // reproduce it verbatim from the salvaged header.
        assert_eq!(
            tenants.admissions,
            reference.report.tenants.as_ref().unwrap().admissions,
            "{what}: recovered admission audit diverges"
        );
    }
}

/// The full kill matrix, serial: every crash point of every epoch of the
/// faulty scenario dies, salvages, resumes, and lands byte-identical.
#[test]
fn every_crash_point_of_every_epoch_recovers_byte_identical() {
    let runner = runner("fault_flaky_crowd");
    let scratch = Scratch::new("serial");
    let reference = runner.run_recorded(ExecMode::Serial, runner.spec().seed).unwrap();
    assert!(reference.report.tenants.is_some(), "the chaos scenario must exercise tenancy");
    for epoch in 0..runner.spec().epochs {
        for point in CrashPoint::ALL {
            let path = scratch.log_path(point, epoch);
            let recovered = kill_salvage_resume(&runner, ExecMode::Serial, point, epoch, &path);
            assert_recovered(&reference, &recovered, &format!("{point} @ epoch {epoch}"));
        }
    }
}

/// Crash and recover under `Sharded(4)`, compared against the *serial*
/// uninterrupted reference: recovery is mode-portable, so a run crashed
/// on one machine shape can resume on another.
#[test]
fn sharded_recovery_matches_the_serial_reference() {
    let runner = runner("fault_flaky_crowd");
    let scratch = Scratch::new("sharded");
    let reference = runner.run_recorded(ExecMode::Serial, runner.spec().seed).unwrap();
    for epoch in [0, 3, 7, runner.spec().epochs - 1] {
        for point in [CrashPoint::PostDrain, CrashPoint::MidLogAppend] {
            let path = scratch.log_path(point, epoch);
            let recovered = kill_salvage_resume(&runner, ExecMode::Sharded(4), point, epoch, &path);
            assert_recovered(&reference, &recovered, &format!("sharded {point} @ epoch {epoch}"));
        }
    }
}

/// An admission **rejection** predates epoch 0, so it lives only in the
/// streamed header — kill the run before anything else is durable and
/// the salvaged prefix alone must reproduce the rejection audit.
#[test]
fn admission_rejections_survive_an_epoch_zero_crash() {
    let runner = runner("tenant_starved_reject");
    let scratch = Scratch::new("admission");
    let reference = runner.run_recorded(ExecMode::Serial, runner.spec().seed).unwrap();
    let rejected: u32 =
        reference.report.tenants.as_ref().unwrap().rows.iter().map(|r| r.rejected).sum();
    assert!(rejected > 0, "the scenario must actually reject a submission");
    for point in CrashPoint::ALL {
        let path = scratch.log_path(point, 0);
        let recovered = kill_salvage_resume(&runner, ExecMode::Serial, point, 0, &path);
        assert_recovered(&reference, &recovered, &format!("{point} @ epoch 0"));
    }
}
