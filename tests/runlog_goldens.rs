//! The event-sourced replay regression corpus.
//!
//! Three layers of guarantees over `craqr-runlog`:
//!
//! 1. **Committed replay goldens** — the drift scenarios carry a
//!    `[runlog]` block, so `tests/goldens/<name>.runlog.txt` pins the
//!    exact epoch inputs of the golden runs. Replaying those committed
//!    logs (crowd detached, serial *and* `Sharded(4)`) must reproduce
//!    the committed report and trace goldens byte-for-byte and re-record
//!    an identical log.
//! 2. **Whole-corpus record→replay** — every committed scenario can be
//!    event-sourced and replayed under both modes, reproducing its live
//!    checksums.
//! 3. **Resume** — truncating a drift log at *every* epoch boundary and
//!    resuming live re-converges on the uninterrupted run's report and
//!    trace checksums (the closed loop's decisions included).
//!
//! Re-bless after an intentional behaviour change with:
//!
//! ```text
//! cargo run --release --bin craqr-scenario -- --all scenarios --bless
//! ```

use craqr::core::ExecMode;
use craqr::runlog::RunLog;
use craqr::scenario::{replay, resume, ScenarioRunner};
use std::path::{Path, PathBuf};

/// The committed drift scenarios with replay goldens.
const DRIFT_SCENARIOS: [&str; 3] =
    ["drift_rate_jump", "drift_hotspot_migration", "drift_sensor_dropout"];

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn golden(name: &str) -> String {
    let path = repo_root().join("tests/goldens").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); bless with \
             `cargo run --release --bin craqr-scenario -- --all scenarios --bless`",
            path.display()
        )
    })
}

fn committed_log(stem: &str) -> (String, RunLog) {
    let text = golden(&format!("{stem}.runlog.txt"));
    let log = RunLog::parse(&text)
        .unwrap_or_else(|e| panic!("{stem}.runlog.txt failed integrity checks: {e}"));
    (text, log)
}

fn scenario_files() -> Vec<PathBuf> {
    craqr::scenario::scenario_files(&repo_root().join("scenarios")).expect("scenarios dir")
}

#[test]
fn committed_runlogs_replay_to_the_committed_goldens() {
    for stem in DRIFT_SCENARIOS {
        let (text, log) = committed_log(stem);
        assert_eq!(log.scenario, stem);
        for exec in [ExecMode::Serial, ExecMode::Sharded(4)] {
            let out = replay(&log, exec).unwrap_or_else(|e| panic!("{stem} [{exec:?}]: {e}"));
            assert_eq!(
                out.report.canonical(),
                golden(&format!("{stem}.golden.txt")),
                "{stem} [{exec:?}]: replayed report differs from the committed golden"
            );
            assert_eq!(
                out.trace.as_ref().expect("drift scenarios close the loop").canonical(),
                golden(&format!("{stem}.trace.txt")),
                "{stem} [{exec:?}]: replayed trace differs from the committed golden"
            );
            // The replay re-records; the fresh log must be byte-identical
            // to the committed one (same inputs, same decisions, same
            // seals).
            assert_eq!(
                out.log.expect("replay re-records").canonical(),
                text,
                "{stem} [{exec:?}]: re-recorded log differs from the committed one"
            );
        }
    }
}

#[test]
fn committed_runlogs_match_a_fresh_recording() {
    // The committed log is not a fossil: recording the scenario live
    // today produces the identical artifact (this is what `--check`
    // verifies through the CLI; pinned here under plain `cargo test`).
    for stem in DRIFT_SCENARIOS {
        let (text, _) = committed_log(stem);
        let runner =
            ScenarioRunner::from_file(&repo_root().join("scenarios").join(format!("{stem}.toml")))
                .unwrap_or_else(|e| panic!("{e}"));
        let out = runner.run_full(ExecMode::Serial, runner.spec().seed).unwrap();
        let log = out.log.expect("[runlog] spec records");
        assert_eq!(
            log.canonical(),
            text,
            "{stem}: a fresh recording no longer matches the committed log; re-bless if \
             the change is intentional"
        );
    }
}

#[test]
fn whole_corpus_records_and_replays_in_both_modes() {
    for path in scenario_files() {
        let runner = ScenarioRunner::from_file(&path).unwrap_or_else(|e| panic!("{e}"));
        let name = runner.spec().name.clone();
        let live = runner
            .run_recorded(ExecMode::Serial, runner.spec().seed)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let log = live.log.as_ref().expect("run_recorded returns a log");
        // The log survives its own codec.
        let reparsed = RunLog::parse(&log.canonical()).unwrap_or_else(|e| panic!("{name}: {e}"));
        for exec in [ExecMode::Serial, ExecMode::Sharded(4)] {
            let out = replay(&reparsed, exec).unwrap_or_else(|e| panic!("{name} [{exec:?}]: {e}"));
            assert_eq!(
                out.report.checksum(),
                live.report.checksum(),
                "{name} [{exec:?}]: replayed report checksum diverged"
            );
            assert_eq!(
                out.trace.as_ref().map(|t| t.checksum()),
                live.trace.as_ref().map(|t| t.checksum()),
                "{name} [{exec:?}]: replayed trace checksum diverged"
            );
        }
    }
}

#[test]
fn resume_at_every_boundary_of_drift_rate_jump_matches_the_full_run() {
    // The satellite acceptance test: truncate the committed log at every
    // epoch boundary k, rebuild through the verified prefix, run the
    // remaining epochs live, and land on the uninterrupted run's exact
    // trace checksum — including k = 0 (pure re-run) and k = n (pure
    // verification).
    let (_, log) = committed_log("drift_rate_jump");
    let full_report = golden("drift_rate_jump.golden.txt");
    let full_trace = golden("drift_rate_jump.trace.txt");
    for k in 0..=log.epochs.len() {
        let out = resume(&log.truncated(k).unwrap(), ExecMode::Serial, k)
            .unwrap_or_else(|e| panic!("resume at {k}: {e}"));
        assert_eq!(
            out.report.canonical(),
            full_report,
            "resume at {k}: report diverged from the uninterrupted run"
        );
        assert_eq!(
            out.trace.expect("trace").canonical(),
            full_trace,
            "resume at {k}: trace diverged from the uninterrupted run"
        );
    }
}

#[test]
fn resume_reconverges_for_every_drift_scenario() {
    // Acceptance criterion: resume from any epoch boundary of the three
    // drift scenarios yields the same final trace checksum as the
    // uninterrupted run. (`drift_rate_jump` is covered exhaustively
    // against the committed goldens above; all three are swept here.)
    for stem in DRIFT_SCENARIOS {
        let (_, log) = committed_log(stem);
        let full_report = golden(&format!("{stem}.golden.txt"));
        let full_trace = golden(&format!("{stem}.trace.txt"));
        for k in 0..=log.epochs.len() {
            let out = resume(&log.truncated(k).unwrap(), ExecMode::Serial, k)
                .unwrap_or_else(|e| panic!("{stem} resume at {k}: {e}"));
            assert_eq!(out.report.canonical(), full_report, "{stem} resume at {k}");
            assert_eq!(out.trace.expect("trace").canonical(), full_trace, "{stem} resume at {k}");
        }
    }
}

#[test]
fn sharded_resume_matches_serial_resume() {
    let (_, log) = committed_log("drift_sensor_dropout");
    let mid = log.epochs.len() / 2;
    let serial = resume(&log.truncated(mid).unwrap(), ExecMode::Serial, mid).unwrap();
    let sharded = resume(&log.truncated(mid).unwrap(), ExecMode::Sharded(4), mid).unwrap();
    assert_eq!(serial.report.canonical(), sharded.report.canonical());
    assert_eq!(
        serial.trace.map(|t| t.canonical()),
        sharded.trace.map(|t| t.canonical()),
        "resume must honour the executor determinism contract"
    );
}
