//! Spec-parsing coverage: precise rejection of malformed scenarios, and a
//! property test that every valid spec survives serialize → parse
//! unchanged, through both syntaxes.

use craqr::scenario::{
    AdaptiveSpec, AttributeSpec, BudgetSpec, ChurnSpec, CrashSpec, CrowdFaultSpec, ErrorSpec,
    FaultsSpec, FieldSpec, GridSpec, MobilitySpec, PlacementSpec, PlannerSpec, PopulationSpec,
    QuerySpec, RetrySpec, RunlogSpec, ScenarioSpec, ShiftSpec, SpecError, TelemetrySpec,
    TenantSpec,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MINIMAL: &str = r#"
name = "minimal"
seed = 7
epochs = 3

[grid]
size_km = 4.0
side = 4

[population]
size = 200
human_fraction = 0.25
placement = { kind = "uniform" }
mobility = { kind = "walk", sigma = 0.2 }

[[attributes]]
name = "temp"
field = { kind = "constant", value = 21.0 }

[[queries]]
text = "ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.5"
"#;

fn mutate(from: &str, to: &str) -> Result<ScenarioSpec, SpecError> {
    let src = MINIMAL.replace(from, to);
    assert_ne!(src, MINIMAL, "mutation '{from}' did not apply");
    ScenarioSpec::from_toml(&src)
}

#[test]
fn unknown_fields_are_named_with_their_full_path() {
    for (from, to, path) in [
        ("size_km = 4.0", "size_km = 4.0\nsdie = 4", "grid.sdie"),
        ("human_fraction = 0.25", "human_fractoin = 0.25", "population.human_fractoin"),
        (
            "placement = { kind = \"uniform\" }",
            "placement = { kind = \"uniform\", denisty = 1.0 }",
            "population.placement.denisty",
        ),
        (
            "field = { kind = \"constant\", value = 21.0 }",
            "field = { kind = \"constant\", value = 21.0, unit = \"C\" }",
            "attributes[0].field.unit",
        ),
    ] {
        match mutate(from, to) {
            Err(SpecError::UnknownField { path: p }) => assert_eq!(p, path),
            other => panic!("expected UnknownField({path}), got {other:?}"),
        }
    }
}

#[test]
fn zero_cell_grids_are_rejected() {
    match mutate("side = 4", "side = 0") {
        Err(SpecError::OutOfRange { path, message }) => {
            assert_eq!(path, "grid.side");
            assert!(message.contains("zero-cell"), "{message}");
        }
        other => panic!("expected OutOfRange(grid.side), got {other:?}"),
    }
    // A zero-sized region is just as unplannable.
    assert!(matches!(
        mutate("size_km = 4.0", "size_km = 0.0"),
        Err(SpecError::OutOfRange { path, .. }) if path == "grid.size_km"
    ));
}

#[test]
fn out_of_range_budgets_are_rejected() {
    let bad = format!("{MINIMAL}\n[budget]\ninitial = -1.0\n");
    assert!(matches!(
        ScenarioSpec::from_toml(&bad),
        Err(SpecError::OutOfRange { path, .. }) if path == "budget.initial"
    ));
    let inverted = format!("{MINIMAL}\n[budget]\nmin = 50.0\nmax = 10.0\n");
    assert!(matches!(
        ScenarioSpec::from_toml(&inverted),
        Err(SpecError::OutOfRange { path, .. }) if path == "budget.max"
    ));
    let nv = format!("{MINIMAL}\n[budget]\nnv_threshold = 250.0\n");
    assert!(matches!(
        ScenarioSpec::from_toml(&nv),
        Err(SpecError::OutOfRange { path, .. }) if path == "budget.nv_threshold"
    ));
}

#[test]
fn type_and_structure_errors_are_precise() {
    assert!(matches!(
        mutate("seed = 7", "seed = \"seven\""),
        Err(SpecError::TypeMismatch { path, expected: "integer", .. }) if path == "seed"
    ));
    assert!(matches!(
        mutate("seed = 7", "seed = -7"),
        Err(SpecError::OutOfRange { path, .. }) if path == "seed"
    ));
    assert!(matches!(
        mutate("epochs = 3", "epochs = 0"),
        Err(SpecError::OutOfRange { path, .. }) if path == "epochs"
    ));
    // Missing required section.
    let no_grid = MINIMAL.replace("[grid]\nsize_km = 4.0\nside = 4\n", "");
    assert!(matches!(
        ScenarioSpec::from_toml(&no_grid),
        Err(SpecError::MissingField { path }) if path == "grid"
    ));
    // Unknown enum tags.
    assert!(matches!(
        mutate("kind = \"walk\", sigma = 0.2", "kind = \"teleport\", sigma = 0.2"),
        Err(SpecError::OutOfRange { path, .. }) if path == "population.mobility.kind"
    ));
    // Broken syntax reports a line.
    match ScenarioSpec::from_toml("name = \"x\"\nseed = = 3\n") {
        Err(SpecError::Syntax(e)) => assert_eq!(e.line, 2),
        other => panic!("expected Syntax error, got {other:?}"),
    }
}

#[test]
fn semantic_duplicates_and_empties_are_rejected() {
    let dup = MINIMAL.replace(
        "[[queries]]",
        "[[attributes]]\nname = \"temp\"\nfield = { kind = \"constant\", value = 1.0 }\n\n[[queries]]",
    );
    assert!(matches!(
        ScenarioSpec::from_toml(&dup),
        Err(SpecError::OutOfRange { path, .. }) if path == "attributes[1].name"
    ));
    assert!(matches!(
        mutate("text = \"ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.5\"", "text = \"  \""),
        Err(SpecError::OutOfRange { path, .. }) if path == "queries[0].text"
    ));
}

#[test]
fn tenants_block_is_strictly_parsed() {
    const TENANTED: &str = r#"
[[tenants]]
name = "alice"
pool = 40.0
"#;
    // Declaring tenants makes the per-query tenant key mandatory…
    let missing = format!("{MINIMAL}\n{TENANTED}");
    assert!(matches!(
        ScenarioSpec::from_toml(&missing),
        Err(SpecError::OutOfRange { path, .. }) if path == "queries[0].tenant"
    ));
    // …and naming a declared tenant makes the spec valid.
    let ok = format!(
        "{}\n{TENANTED}",
        MINIMAL.replace("[[queries]]", "[[queries]]\ntenant = \"alice\"")
    );
    let spec = ScenarioSpec::from_toml(&ok).unwrap();
    assert_eq!(spec.tenants.len(), 1);
    assert_eq!(spec.queries[0].tenant.as_deref(), Some("alice"));

    // Undeclared references, duplicate names, bad pools, tenant keys
    // without a block — all rejected with precise paths.
    let unknown = ok.replace("tenant = \"alice\"", "tenant = \"mallory\"");
    assert!(matches!(
        ScenarioSpec::from_toml(&unknown),
        Err(SpecError::OutOfRange { path, .. }) if path == "queries[0].tenant"
    ));
    let dup = format!("{ok}\n[[tenants]]\nname = \"alice\"\npool = 9.0\n");
    assert!(matches!(
        ScenarioSpec::from_toml(&dup),
        Err(SpecError::OutOfRange { path, .. }) if path == "tenants[1].name"
    ));
    let bad_pool = ok.replace("pool = 40.0", "pool = 0.0");
    assert!(matches!(
        ScenarioSpec::from_toml(&bad_pool),
        Err(SpecError::OutOfRange { path, .. }) if path == "tenants[0].pool"
    ));
    let orphan_key = MINIMAL.replace("[[queries]]", "[[queries]]\ntenant = \"alice\"");
    assert!(matches!(
        ScenarioSpec::from_toml(&orphan_key),
        Err(SpecError::OutOfRange { path, .. }) if path == "queries[0].tenant"
    ));
    let typo = format!("{ok}\n[[tenants]]\nname = \"bob\"\npool = 5.0\npol = 1.0\n");
    assert!(matches!(
        ScenarioSpec::from_toml(&typo),
        Err(SpecError::UnknownField { path }) if path == "tenants[1].pol"
    ));
    // A flat adaptive budget_pool contradicts per-tenant pools.
    let contradiction = format!("{ok}\n[adaptive]\nbudget_pool = 30.0\n");
    assert!(matches!(
        ScenarioSpec::from_toml(&contradiction),
        Err(SpecError::OutOfRange { path, .. }) if path == "adaptive.budget_pool"
    ));
}

#[test]
fn adaptive_block_is_strictly_parsed() {
    let ok = format!("{MINIMAL}\n[adaptive]\ndetector = \"page_hinkley\"\nthreshold = 6.0\n");
    let spec = ScenarioSpec::from_toml(&ok).unwrap();
    let a = spec.adaptive.as_ref().expect("adaptive block parsed");
    assert!(a.enabled, "enabled defaults to true");
    assert_eq!(a.detector, "page_hinkley");
    assert_eq!(a.threshold, 6.0);

    let typo = format!("{MINIMAL}\n[adaptive]\nthresold = 6.0\n");
    assert!(matches!(
        ScenarioSpec::from_toml(&typo),
        Err(SpecError::UnknownField { path }) if path == "adaptive.thresold"
    ));
    let bad_kind = format!("{MINIMAL}\n[adaptive]\ndetector = \"ewma\"\n");
    assert!(matches!(
        ScenarioSpec::from_toml(&bad_kind),
        Err(SpecError::OutOfRange { path, .. }) if path == "adaptive.detector"
    ));
    let bad_threshold = format!("{MINIMAL}\n[adaptive]\nthreshold = 0.0\n");
    assert!(matches!(
        ScenarioSpec::from_toml(&bad_threshold),
        Err(SpecError::OutOfRange { path, .. }) if path == "adaptive.threshold"
    ));
}

#[test]
fn shifts_are_strictly_parsed() {
    let ok = format!(
        "{MINIMAL}\n[[shifts]]\nkind = \"dropout\"\nepoch = 1\nprobability = 0.5\n\
         rect = [0.0, 0.0, 2.0, 2.0]\n"
    );
    let spec = ScenarioSpec::from_toml(&ok).unwrap();
    assert_eq!(spec.shifts.len(), 1);
    assert_eq!(spec.shifts[0].epoch(), 1);

    let late =
        format!("{MINIMAL}\n[[shifts]]\nkind = \"participation\"\nepoch = 99\nfactor = 2.0\n");
    assert!(matches!(
        ScenarioSpec::from_toml(&late),
        Err(SpecError::OutOfRange { path, .. }) if path == "shifts[0].epoch"
    ));
    let inverted_rect = format!(
        "{MINIMAL}\n[[shifts]]\nkind = \"migrate\"\nepoch = 0\nprobability = 0.5\n\
         rect = [2.0, 0.0, 1.0, 2.0]\n"
    );
    assert!(matches!(
        ScenarioSpec::from_toml(&inverted_rect),
        Err(SpecError::OutOfRange { path, .. }) if path == "shifts[0].rect"
    ));
    let unknown_kind = format!("{MINIMAL}\n[[shifts]]\nkind = \"earthquake\"\nepoch = 0\n");
    assert!(matches!(
        ScenarioSpec::from_toml(&unknown_kind),
        Err(SpecError::OutOfRange { path, .. }) if path == "shifts[0].kind"
    ));
    // A migrate target outside the world would strand the crowd where no
    // request can reach; a dropout region outside it is a silent no-op.
    let stranded = format!(
        "{MINIMAL}\n[[shifts]]\nkind = \"migrate\"\nepoch = 0\nprobability = 0.5\n\
         rect = [100.0, 100.0, 110.0, 110.0]\n"
    );
    assert!(matches!(
        ScenarioSpec::from_toml(&stranded),
        Err(SpecError::OutOfRange { path, .. }) if path == "shifts[0].rect"
    ));
    let noop = format!(
        "{MINIMAL}\n[[shifts]]\nkind = \"dropout\"\nepoch = 0\nprobability = 0.5\n\
         rect = [10.0, 10.0, 12.0, 12.0]\n"
    );
    assert!(matches!(
        ScenarioSpec::from_toml(&noop),
        Err(SpecError::OutOfRange { path, .. }) if path == "shifts[0].rect"
    ));
}

// ---------------------------------------------------------------------------
// Property: serialize → parse is the identity on valid specs
// ---------------------------------------------------------------------------

fn arb_field(rng: &mut StdRng) -> FieldSpec {
    match rng.gen_range(0u8..5) {
        0 => FieldSpec::Temperature {
            base: rng.gen_range(-10.0..35.0),
            y_gradient: rng.gen_range(-1.0..1.0),
            islands: (0..rng.gen_range(0usize..3))
                .map(|_| {
                    (
                        rng.gen_range(0.0..4.0),
                        rng.gen_range(0.0..4.0),
                        rng.gen_range(0.0..6.0),
                        rng.gen_range(0.1..2.0),
                    )
                })
                .collect(),
            diurnal_amplitude: rng.gen_range(0.0..8.0),
            diurnal_period: rng.gen_range(60.0..2000.0),
        },
        1 => FieldSpec::Rain {
            x_start: rng.gen_range(-2.0..6.0),
            speed: rng.gen_range(-0.2..0.2),
            width: rng.gen_range(0.2..3.0),
        },
        2 => FieldSpec::ConstantFloat { value: rng.gen_range(-100.0..100.0) },
        3 => FieldSpec::ConstantBool { value: rng.gen() },
        _ => FieldSpec::Burst {
            mu: rng.gen_range(0.0..1.0),
            alpha: rng.gen_range(0.0..5.0),
            beta: rng.gen_range(0.05..1.0),
            sigma: rng.gen_range(0.1..1.0),
            horizon: rng.gen_range(10.0..120.0),
            immigrants: rng.gen_range(0u32..10),
            branching_ratio: rng.gen_range(0.0..0.95),
            scale: rng.gen_range(-2.0..2.0),
        },
    }
}

/// A rect strictly inside the `[0, size)²` world — shift rects must
/// intersect it (dropout) or lie inside it (migrate).
fn arb_rect(rng: &mut StdRng, size: f64) -> (f64, f64, f64, f64) {
    let x0 = rng.gen_range(0.0..size * 0.5);
    let y0 = rng.gen_range(0.0..size * 0.5);
    let x1 = rng.gen_range((x0 + size * 0.1)..size);
    let y1 = rng.gen_range((y0 + size * 0.1)..size);
    (x0, y0, x1, y1)
}

fn arb_shift(rng: &mut StdRng, epochs: u32, size: f64) -> ShiftSpec {
    let epoch = rng.gen_range(0..epochs);
    match rng.gen_range(0u8..3) {
        0 => ShiftSpec::Participation { epoch, factor: rng.gen_range(0.0..5.0) },
        1 => ShiftSpec::Dropout {
            epoch,
            probability: rng.gen_range(0.0..1.0),
            rect: arb_rect(rng, size),
        },
        _ => ShiftSpec::Migrate {
            epoch,
            probability: rng.gen_range(0.0..1.0),
            rect: arb_rect(rng, size),
        },
    }
}

fn arb_adaptive(rng: &mut StdRng) -> AdaptiveSpec {
    AdaptiveSpec {
        enabled: rng.gen(),
        detector: if rng.gen() { "cusum".into() } else { "page_hinkley".into() },
        slack: rng.gen_range(0.0..2.0),
        threshold: rng.gen_range(0.5..50.0),
        warmup_epochs: rng.gen_range(0u32..10),
        cooldown_epochs: rng.gen_range(0u32..10),
        gamma0: rng.gen_range(0.01..1.0),
        decay_batches: rng.gen_range(1.0..200.0),
        initial_rate: rng.gen_range(0.01..10.0),
        budget_pool: if rng.gen() { Some(rng.gen_range(1.0..500.0)) } else { None },
        rebuild_chains: rng.gen(),
        demand_headroom: rng.gen_range(1.0..3.0),
    }
}

/// At most one window per fault kind (so same-kind windows can never
/// overlap), each inside `[0, epochs)`; `None` when every knob came up
/// empty so `faults = Some(empty)` never round-trips ambiguously.
fn arb_faults(rng: &mut StdRng, epochs: u32) -> Option<FaultsSpec> {
    let mut crowd = Vec::new();
    for kind in ["drop", "delay", "duplicate"] {
        if rng.gen() {
            let from_epoch = rng.gen_range(0..epochs);
            crowd.push(CrowdFaultSpec {
                kind: kind.into(),
                from_epoch,
                to_epoch: rng.gen_range(from_epoch..epochs),
                probability: rng.gen_range(0.0..1.0),
                minutes: if kind == "delay" { rng.gen_range(0.1..10.0) } else { 0.0 },
            });
        }
    }
    let retry = if rng.gen() {
        Some(RetrySpec {
            threshold: rng.gen_range(0.0..1.0),
            backoff: rng.gen_range(0.0..1.0),
            max_attempts: rng.gen_range(1u32..5),
        })
    } else {
        None
    };
    let crash = ["post-dispatch", "post-drain", "post-control", "mid-log-append"]
        .iter()
        .take(rng.gen_range(0usize..3))
        .map(|p| CrashSpec { point: (*p).into(), epoch: rng.gen_range(0..epochs) })
        .collect::<Vec<_>>();
    if crowd.is_empty() && retry.is_none() && crash.is_empty() {
        return None;
    }
    Some(FaultsSpec { crowd, retry, crash })
}

/// Draws a random *valid* spec: every constructor input stays inside the
/// documented ranges, names come from a fixed pool with unique suffixes.
fn arb_spec(rng: &mut StdRng) -> ScenarioSpec {
    let placement = match rng.gen_range(0u8..3) {
        0 => PlacementSpec::Uniform,
        1 => PlacementSpec::City,
        _ => PlacementSpec::Hotspots {
            floor: rng.gen_range(0.1..3.0),
            spots: (0..rng.gen_range(0usize..4))
                .map(|_| {
                    (
                        rng.gen_range(-5.0..10.0),
                        rng.gen_range(-5.0..10.0),
                        rng.gen_range(0.0..5.0),
                        rng.gen_range(0.1..2.0),
                    )
                })
                .collect(),
        },
    };
    let mobility = match rng.gen_range(0u8..4) {
        0 => MobilitySpec::Stationary,
        1 => MobilitySpec::Walk { sigma: rng.gen_range(0.0..1.0) },
        2 => MobilitySpec::Waypoint {
            speed: rng.gen_range(0.01..0.5),
            pause: rng.gen_range(0.0..10.0),
        },
        _ => MobilitySpec::GaussMarkov {
            alpha: rng.gen_range(0.0..0.99),
            mean_speed: rng.gen_range(0.0..0.5),
            sigma: rng.gen_range(0.0..0.2),
        },
    };
    let names = ["temp", "rain", "load", "noise_db", "pm2-5"];
    let attr_count = rng.gen_range(1usize..4);
    let attributes: Vec<AttributeSpec> = (0..attr_count)
        .map(|i| AttributeSpec { name: names[i].into(), human: rng.gen(), field: arb_field(rng) })
        .collect();
    let tenant_names = ["alice", "bob-2", "city_ops"];
    let tenants: Vec<TenantSpec> = tenant_names
        .iter()
        .take(rng.gen_range(0usize..4))
        .map(|n| TenantSpec { name: (*n).into(), pool: rng.gen_range(1.0..500.0) })
        .collect();
    let queries: Vec<QuerySpec> = (0..rng.gen_range(1usize..4))
        .map(|i| QuerySpec {
            // Exercise string escaping: quotes, backslashes, unicode.
            text: format!(
                "ACQUIRE {} FROM RECT(0,0,2,2) RATE 0.{} -- \"q{i}\" \\ λ✓",
                attributes[i % attributes.len()].name,
                rng.gen_range(1u32..10),
            ),
            tenant: if tenants.is_empty() {
                None
            } else {
                Some(tenants[rng.gen_range(0..tenants.len())].name.clone())
            },
        })
        .collect();
    let min = rng.gen_range(0.0..5.0);
    let epochs = rng.gen_range(1u32..100);
    let size_km = rng.gen_range(1.0..20.0);
    let adaptive = if rng.gen() {
        let mut a = arb_adaptive(rng);
        if !tenants.is_empty() {
            // Multi-tenant replans allocate from the declared pools; a
            // flat budget_pool alongside [[tenants]] is a spec error.
            a.budget_pool = None;
        }
        Some(a)
    } else {
        None
    };
    ScenarioSpec {
        name: format!("prop-{}", rng.gen_range(0u32..1000)).replace('-', "_"),
        description: String::from_iter((0..rng.gen_range(0usize..20)).map(|_| {
            *['a', ' ', 'π', '"', '\\', '\n', 'z'].get(rng.gen_range(0usize..7)).unwrap()
        })),
        seed: rng.gen_range(0u64..i64::MAX as u64),
        epochs,
        grid: GridSpec { size_km, side: rng.gen_range(1u32..12) },
        population: PopulationSpec {
            size: rng.gen_range(1u32..5000),
            human_fraction: rng.gen_range(0.0..1.0),
            placement,
            mobility,
        },
        planner: PlannerSpec {
            batch_minutes: rng.gen_range(0.5..30.0),
            f_headroom: rng.gen_range(1.0..3.0),
            mobility_substeps: rng.gen_range(1u32..10),
            enforce_min_area: rng.gen(),
            shape: if rng.gen() { "chain".into() } else { "star".into() },
        },
        budget: BudgetSpec {
            initial: rng.gen_range(0.0..100.0),
            nv_threshold: rng.gen_range(0.0..100.0),
            delta: rng.gen_range(0.0..10.0),
            min,
            max: min + rng.gen_range(0.0..200.0),
        },
        errors: if rng.gen() {
            Some(ErrorSpec {
                gps_sigma: rng.gen_range(0.0..0.5),
                bool_flip_prob: rng.gen_range(0.0..1.0),
                value_sigma: rng.gen_range(0.0..2.0),
                mitigation: if rng.gen() { "standard".into() } else { "off".into() },
            })
        } else {
            None
        },
        churn: if rng.gen() {
            Some(ChurnSpec { probability: rng.gen_range(0.0..1.0) })
        } else {
            None
        },
        attributes,
        tenants,
        queries,
        shifts: (0..rng.gen_range(0usize..4)).map(|_| arb_shift(rng, epochs, size_km)).collect(),
        adaptive,
        runlog: if rng.gen() { Some(RunlogSpec { record: rng.gen() }) } else { None },
        faults: if rng.gen() { arb_faults(rng, epochs) } else { None },
        telemetry: if rng.gen() { Some(TelemetrySpec { report: rng.gen() }) } else { None },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn valid_specs_round_trip_through_both_syntaxes(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = arb_spec(&mut rng);
        prop_assert!(spec.validate().is_ok(), "generator produced an invalid spec: {spec:?}");

        let toml = spec.to_toml();
        let via_toml = ScenarioSpec::from_toml(&toml);
        prop_assert!(via_toml.is_ok(), "TOML re-parse failed: {:?}\n{toml}", via_toml.err());
        prop_assert_eq!(&spec, &via_toml.unwrap(), "TOML round trip changed the spec:\n{}", toml);

        let json = spec.to_json();
        let via_json = ScenarioSpec::from_json(&json);
        prop_assert!(via_json.is_ok(), "JSON re-parse failed: {:?}\n{json}", via_json.err());
        prop_assert_eq!(&spec, &via_json.unwrap(), "JSON round trip changed the spec:\n{}", json);
    }
}
