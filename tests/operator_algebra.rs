//! Stream-level algebraic laws of the PMAT operators — the "elegant
//! properties … exploited for managing crowdsensed data streams" the paper
//! leans on (Section III-A, ref. [11] Daley & Vere-Jones).
//!
//! Each law is checked statistically on seeded streams:
//!
//! - thinning composes multiplicatively: `T_p ∘ T_q = T_{p·q}`,
//! - thinning and partition commute,
//! - superposition adds rates; thinning distributes over superposition,
//! - flatten is (approximately) idempotent: flattening an already
//!   homogeneous stream at its own rate changes little,
//! - partition then union is the identity.

use craqr::core::ops::{EstimatorMode, FlattenConfig, FlattenOp};
use craqr::engine::{Emitter, InputPort, Operator};
use craqr::prelude::*;
use craqr::sensing::{AttrValue, AttributeId, SensorId};

fn tuples_from(points: &[SpaceTimePoint]) -> Vec<CrowdTuple> {
    points
        .iter()
        .enumerate()
        .map(|(i, p)| CrowdTuple {
            id: i as u64,
            attr: AttributeId(0),
            point: *p,
            value: AttrValue::Bool(true),
            sensor: SensorId(0),
        })
        .collect()
}

fn run<O: Operator<CrowdTuple>>(op: &mut O, batch: &[CrowdTuple]) -> Vec<Vec<CrowdTuple>> {
    let mut em = Emitter::new(op.output_ports());
    op.process(InputPort(0), batch, &mut em);
    em.into_buffers()
}

fn cell() -> Rect {
    Rect::with_size(10.0, 10.0)
}

fn homogeneous_stream(rate: f64, minutes: f64, seed: u64) -> Vec<CrowdTuple> {
    let w = SpaceTimeWindow::new(cell(), 0.0, minutes);
    tuples_from(&HomogeneousMdpp::new(rate, cell()).sample(&w, &mut seeded_rng(seed)))
}

#[test]
fn thinning_composes_multiplicatively() {
    let input = homogeneous_stream(8.0, 30.0, 1);
    // T(8→4) then T(4→2) …
    let mut t1 = ThinOp::new(8.0, 4.0, 10);
    let mut t2 = ThinOp::new(4.0, 2.0, 11);
    let mid = run(&mut t1, &input).remove(0);
    let composed = run(&mut t2, &mid).remove(0);
    // … must match T(8→2) in expectation.
    let mut direct_op = ThinOp::new(8.0, 2.0, 12);
    let direct = run(&mut direct_op, &input).remove(0);
    let n = input.len() as f64;
    let expect = n * 0.25;
    let sd = (n * 0.25 * 0.75).sqrt();
    assert!(
        (composed.len() as f64 - expect).abs() < 5.0 * sd,
        "composed {} vs expected {expect}",
        composed.len()
    );
    assert!(
        (direct.len() as f64 - expect).abs() < 5.0 * sd,
        "direct {} vs expected {expect}",
        direct.len()
    );
}

#[test]
fn thinning_commutes_with_partition() {
    let input = homogeneous_stream(6.0, 20.0, 2);
    let (west, east) = cell().split_at_x(4.0).unwrap();

    // Path A: thin then partition.
    let mut thin_a = ThinOp::new(6.0, 2.0, 20);
    let thinned = run(&mut thin_a, &input).remove(0);
    let mut part_a = PartitionOp::binary(west, east);
    let a = run(&mut part_a, &thinned);

    // Path B: partition then thin each branch.
    let mut part_b = PartitionOp::binary(west, east);
    let halves = run(&mut part_b, &input);
    let mut thin_w = ThinOp::new(6.0, 2.0, 21);
    let mut thin_e = ThinOp::new(6.0, 2.0, 22);
    let b_west = run(&mut thin_w, &halves[0]).remove(0);
    let b_east = run(&mut thin_e, &halves[1]).remove(0);

    // Same expected counts per branch (west is 40% of the area).
    let minutes = 20.0;
    for (got, area, label) in [
        (a[0].len(), west.area(), "A west"),
        (a[1].len(), east.area(), "A east"),
        (b_west.len(), west.area(), "B west"),
        (b_east.len(), east.area(), "B east"),
    ] {
        let expect = 2.0 * area * minutes;
        let sd = expect.sqrt();
        assert!((got as f64 - expect).abs() < 5.0 * sd, "{label}: {got} vs expected {expect:.0}");
    }
}

#[test]
fn superposition_adds_rates() {
    let a = homogeneous_stream(2.0, 20.0, 3);
    let b = homogeneous_stream(3.0, 20.0, 4);
    let mut s = SuperposeOp::new(cell(), vec![2.0, 3.0]);
    assert!((s.output_rate() - 5.0).abs() < 1e-12);
    let mut em = Emitter::new(s.output_ports());
    s.process(InputPort(0), &a, &mut em);
    s.process(InputPort(1), &b, &mut em);
    let merged = em.into_buffers().remove(0);
    let w = SpaceTimeWindow::new(cell(), 0.0, 20.0);
    let rate = w.empirical_rate(merged.len());
    assert!((rate - 5.0).abs() < 0.25, "superposed rate {rate}");
    // And the merged stream is still homogeneous Poisson.
    let points: Vec<_> = merged.iter().map(|t| t.point).collect();
    let rep = homogeneity_report(&points, &w, 4, 2);
    assert!(rep.is_homogeneous(0.001), "chi p={}", rep.chi_square.p_value);
}

#[test]
fn thinning_distributes_over_superposition() {
    // thin(superpose(a, b)) ≈ superpose(thin(a), thin(b)) in rate.
    let a = homogeneous_stream(2.0, 20.0, 5);
    let b = homogeneous_stream(4.0, 20.0, 6);
    let w = SpaceTimeWindow::new(cell(), 0.0, 20.0);

    // Left side.
    let mut s = SuperposeOp::new(cell(), vec![2.0, 4.0]);
    let mut em = Emitter::new(s.output_ports());
    s.process(InputPort(0), &a, &mut em);
    s.process(InputPort(1), &b, &mut em);
    let merged = em.into_buffers().remove(0);
    let mut t = ThinOp::new(6.0, 3.0, 30);
    let left = run(&mut t, &merged).remove(0);

    // Right side.
    let mut ta = ThinOp::new(2.0, 1.0, 31);
    let mut tb = ThinOp::new(4.0, 2.0, 32);
    let thin_a = run(&mut ta, &a).remove(0);
    let thin_b = run(&mut tb, &b).remove(0);

    let left_rate = w.empirical_rate(left.len());
    let right_rate = w.empirical_rate(thin_a.len() + thin_b.len());
    assert!((left_rate - 3.0).abs() < 0.2, "left {left_rate}");
    assert!((right_rate - 3.0).abs() < 0.2, "right {right_rate}");
}

#[test]
fn flatten_is_approximately_idempotent_on_homogeneous_input() {
    let input = homogeneous_stream(1.0, 10.0, 7);
    let (mut op, report) = FlattenOp::new(FlattenConfig {
        cell: cell(),
        batch_duration: 10.0,
        target_rate: 1.0,
        mode: EstimatorMode::BatchMle,
        seed: 40,
    });
    let out = run(&mut op, &input).remove(0);
    // Flattening an already-homogeneous stream at its own rate keeps
    // (nearly) everything: the retaining probabilities sit at ≈ 1.
    let kept_frac = out.len() as f64 / input.len() as f64;
    assert!(kept_frac > 0.9, "kept only {kept_frac:.2} of a homogeneous stream");
    // Any clamping shows up as violations, which is fine — they mean p ≥ 1,
    // i.e. the operator recognises there is nothing to remove.
    assert!(report.last_nv() >= 0.0);
    let points: Vec<_> = out.iter().map(|t| t.point).collect();
    let w = SpaceTimeWindow::new(cell(), 0.0, 10.0);
    let rep = homogeneity_report(&points, &w, 4, 2);
    assert!(rep.is_homogeneous(0.001));
}

#[test]
fn partition_union_identity_over_grid_cells() {
    // Partition a stream over a 3×3 grid of sub-cells, then U-merge all
    // nine pieces: identity on the tuple multiset.
    let input = homogeneous_stream(2.0, 10.0, 8);
    let grid = Grid::new(cell(), 3);
    let rects: Vec<Rect> = grid.all_cells().map(|c| grid.cell_rect(c)).collect();
    let mut p = PartitionOp::new(rects.clone());
    let pieces = run(&mut p, &input);
    assert_eq!(p.dropped(), 0, "grid covers the region");

    let mut u = UnionOp::nary(rects);
    assert!(u.is_rectangular(), "3×3 block merges to one rect");
    let mut em = Emitter::new(u.output_ports());
    for (i, piece) in pieces.iter().enumerate() {
        u.process(InputPort(i as u16), piece, &mut em);
    }
    let merged = em.into_buffers().remove(0);
    assert_eq!(merged.len(), input.len());
    let mut ids: Vec<u64> = merged.iter().map(|t| t.id).collect();
    ids.sort_unstable();
    let want: Vec<u64> = (0..input.len() as u64).collect();
    assert_eq!(ids, want);
}
