//! The multi-tenant regression corpus — admission control and per-tenant
//! pool accounting, end to end.
//!
//! Two committed scenarios exercise the tenancy machinery:
//!
//! - `tenant_starved_reject` — three submissions against two pools; the
//!   third over-commits its tenant's pool and is **rejected at
//!   admission** (the run proceeds with the admitted two, and the
//!   rejection is pinned in the report's `[admissions]` audit and the
//!   run log header). The startup's tiny pool also throttles dispatch
//!   every epoch, witnessing conservation.
//! - `tenant_drift_pools` — a participation surge triggers a replan on a
//!   multi-tenant server: the water-fill runs **within each tenant's own
//!   pool first**, so no tenant's drift can drain another tenant's pool.
//!
//! Assertions, per the acceptance criteria:
//!
//! 1. report, trace, and run log are byte-identical across
//!    `ExecMode::Serial` and `Sharded(4)` (per-tenant sections included)
//!    and match their committed goldens;
//! 2. per-tenant pools are conserved **every epoch**: each epoch's
//!    recorded `charge` is ≤ the tenant's capacity;
//! 3. admission rejections and per-tenant charges round-trip through
//!    record → replay → resume byte-for-byte, including resumes at epoch
//!    boundaries that straddle the admission rejection (every boundary
//!    does — admission precedes epoch 0);
//! 4. replans respect pool boundaries: a tenant's allocation never
//!    exceeds its own pool plus the surplus the other tenants left.
//!
//! Re-bless after an intentional behaviour change with:
//!
//! ```text
//! cargo run --release --bin craqr-scenario -- --all scenarios --bless
//! ```

use craqr::core::ExecMode;
use craqr::runlog::RunLog;
use craqr::scenario::{replay, resume, RunOutput, ScenarioRunner};
use std::collections::HashMap;
use std::path::Path;

const TENANT_SCENARIOS: [&str; 2] = ["tenant_drift_pools", "tenant_starved_reject"];

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn golden(name: &str) -> String {
    let path = repo_root().join("tests/goldens").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); bless with \
             `cargo run --release --bin craqr-scenario -- --all scenarios --bless`",
            path.display()
        )
    })
}

fn runner(stem: &str) -> ScenarioRunner {
    ScenarioRunner::from_file(&repo_root().join("scenarios").join(format!("{stem}.toml")))
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Runs `stem` under both exec modes, asserts report + trace + log byte
/// identity across modes (the per-tenant sections ride inside all
/// three), and returns the serial output.
fn run_both_modes(stem: &str) -> RunOutput {
    let runner = runner(stem);
    let serial =
        runner.run_full(ExecMode::Serial, runner.spec().seed).unwrap_or_else(|e| panic!("{e}"));
    let sharded =
        runner.run_full(ExecMode::Sharded(4), runner.spec().seed).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(
        serial.report.canonical(),
        sharded.report.canonical(),
        "{stem}: serial and Sharded(4) reports (incl. [tenants]/[admissions]) diverge"
    );
    assert_eq!(
        serial.trace.as_ref().map(|t| t.canonical()),
        sharded.trace.as_ref().map(|t| t.canonical()),
        "{stem}: serial and Sharded(4) traces diverge"
    );
    assert_eq!(
        serial.log.as_ref().map(|l| l.canonical()),
        sharded.log.as_ref().map(|l| l.canonical()),
        "{stem}: serial and Sharded(4) run logs (incl. adm/charge records) diverge"
    );
    serial
}

/// The declared pool capacity per tenant id, read from the spec (tenant
/// ids are dense in declaration order).
fn pool_capacities(stem: &str) -> HashMap<u32, f64> {
    runner(stem).spec().tenants.iter().enumerate().map(|(i, t)| (i as u32, t.pool)).collect()
}

#[test]
fn tenant_reports_traces_and_logs_match_their_goldens() {
    for stem in TENANT_SCENARIOS {
        let out = run_both_modes(stem);
        assert_eq!(
            golden(&format!("{stem}.golden.txt")),
            out.report.canonical(),
            "{stem}: report no longer matches its golden; re-bless if intentional"
        );
        assert_eq!(
            golden(&format!("{stem}.trace.txt")),
            out.trace.as_ref().expect("tenant scenarios close the loop").canonical(),
            "{stem}: trace no longer matches its golden; re-bless if intentional"
        );
        assert_eq!(
            golden(&format!("{stem}.runlog.txt")),
            out.log.as_ref().expect("tenant scenarios record").canonical(),
            "{stem}: run log no longer matches its golden; re-bless if intentional"
        );
    }
}

#[test]
fn starved_tenant_is_rejected_and_the_run_proceeds() {
    let out = run_both_modes("tenant_starved_reject");
    let tenants = out.report.tenants.as_ref().expect("[tenants] section");
    assert_eq!(tenants.admissions.len(), 3, "three submissions audited");
    let rejected: Vec<_> = tenants.admissions.iter().filter(|a| !a.admitted).collect();
    assert_eq!(rejected.len(), 1, "exactly the over-committing query is rejected");
    assert_eq!(rejected[0].submission, 2);
    assert_eq!(rejected[0].tenant, 1);
    assert!(
        rejected[0].committed + rejected[0].demand > rejected[0].capacity,
        "the rejection is arithmetically justified"
    );
    // The rejected query never ran: only two query rows, at spec
    // indices 0 and 1.
    assert_eq!(out.report.queries.len(), 2);
    assert_eq!(
        out.report.queries.iter().map(|q| q.index).collect::<Vec<_>>(),
        vec![0, 1],
        "rejected queries keep their spec slot out of [queries]"
    );
    // And the admitted ones actually delivered.
    assert!(out.report.queries.iter().all(|q| q.delivered > 0));
    // The pools throttled dispatch: every dispatched request is charged
    // to some tenant, so total charges below total requested means the
    // clamp withheld the difference.
    let charged: f64 = tenants.rows.iter().map(|r| r.charged).sum();
    assert!(
        charged + 0.5 < out.report.totals.requested as f64,
        "tenant pools never throttled dispatch: charged {charged} of {} requested",
        out.report.totals.requested
    );
    // And both tenants hit their ceiling at least once.
    for row in &tenants.rows {
        assert!(
            (row.peak_epoch_charge - row.capacity).abs() < 1e-9,
            "tenant {} never saturated its pool: peak {} of {}",
            row.tenant,
            row.peak_epoch_charge,
            row.capacity
        );
    }
}

#[test]
fn per_tenant_pools_are_conserved_every_epoch() {
    for stem in TENANT_SCENARIOS {
        let capacities = pool_capacities(stem);
        let log = RunLog::parse(&golden(&format!("{stem}.runlog.txt")))
            .unwrap_or_else(|e| panic!("{stem}: {e}"));
        assert!(!log.epochs.is_empty());
        for epoch in &log.epochs {
            assert_eq!(
                epoch.charges.len(),
                capacities.len(),
                "{stem} epoch {}: every tenant gets a charge record",
                epoch.epoch
            );
            for charge in &epoch.charges {
                let capacity = capacities[&charge.tenant];
                assert!(
                    charge.spent <= capacity + 1e-9,
                    "{stem} epoch {}: tenant {} overdrew its pool: {} > {capacity}",
                    epoch.epoch,
                    charge.tenant,
                    charge.spent
                );
                assert!(charge.spent >= 0.0);
            }
        }
        // The report's peak-epoch column agrees with the log's maxima. A
        // single serial run suffices here — cross-mode byte identity is
        // pinned by `tenant_reports_traces_and_logs_match_their_goldens`.
        let runner = runner(stem);
        let out =
            runner.run_full(ExecMode::Serial, runner.spec().seed).unwrap_or_else(|e| panic!("{e}"));
        for row in &out.report.tenants.as_ref().expect("[tenants]").rows {
            let log_peak = log
                .epochs
                .iter()
                .flat_map(|e| &e.charges)
                .filter(|c| c.tenant == row.tenant)
                .fold(0.0f64, |m, c| m.max(c.spent));
            assert!(
                (row.peak_epoch_charge - log_peak).abs() < 1e-9,
                "{stem}: tenant {} peak mismatch report {} vs log {log_peak}",
                row.tenant,
                row.peak_epoch_charge
            );
            assert!(row.peak_epoch_charge <= row.capacity + 1e-9);
        }
    }
}

#[test]
fn drift_replan_respects_tenant_pool_boundaries() {
    let out = run_both_modes("tenant_drift_pools");
    let trace = out.trace.as_ref().expect("trace");
    assert!(!trace.replans.is_empty(), "the surge must trigger a replan\n{}", trace.canonical());
    let capacities = pool_capacities("tenant_drift_pools");
    for replan in &trace.replans {
        assert_eq!(
            replan.tenant_pools.len(),
            capacities.len(),
            "multi-tenant replans account every tenant\n{}",
            trace.canonical()
        );
        let total_surplus: f64 =
            replan.tenant_pools.iter().map(|t| (t.pool - t.demand.min(t.pool)).max(0.0)).sum();
        for row in &replan.tenant_pools {
            assert_eq!(row.pool, capacities[&row.tenant], "pool column is the declared capacity");
            // The fairness invariant: a tenant's allocation never exceeds
            // its own pool plus what the other tenants left unused.
            assert!(
                row.alloc <= row.pool + total_surplus + 1e-9,
                "tenant {} drained beyond its pool + surplus: alloc {} pool {} surplus \
                 {total_surplus}\n{}",
                row.tenant,
                row.alloc,
                row.pool,
                trace.canonical()
            );
            assert!(row.alloc <= row.demand + 1e-9, "allocation beyond demand");
        }
        let total_alloc: f64 = replan.tenant_pools.iter().map(|t| t.alloc).sum();
        let total_pool: f64 = replan.tenant_pools.iter().map(|t| t.pool).sum();
        assert!(total_alloc <= total_pool + 1e-9, "Σ alloc exceeds Σ pools");
        assert!((replan.pool - total_pool).abs() < 1e-9, "replan pool is Σ tenant pools");
    }
}

#[test]
fn admission_and_charges_replay_byte_for_byte_in_both_modes() {
    for stem in TENANT_SCENARIOS {
        let text = golden(&format!("{stem}.runlog.txt"));
        let log = RunLog::parse(&text).unwrap_or_else(|e| panic!("{stem}: {e}"));
        assert!(!log.admissions.is_empty(), "{stem}: admission decisions are in the log");
        for exec in [ExecMode::Serial, ExecMode::Sharded(4)] {
            let out = replay(&log, exec).unwrap_or_else(|e| panic!("{stem} [{exec:?}]: {e}"));
            assert_eq!(
                out.report.canonical(),
                golden(&format!("{stem}.golden.txt")),
                "{stem} [{exec:?}]: replayed report differs"
            );
            assert_eq!(
                out.log.expect("replay re-records").canonical(),
                text,
                "{stem} [{exec:?}]: re-recorded log (admissions + charges) differs"
            );
        }
    }
}

#[test]
fn resume_across_the_admission_rejection_reconverges_at_every_boundary() {
    // Admission precedes epoch 0, so every resume boundary straddles the
    // rejection: the resumed run must re-derive the same verdicts (they
    // are cross-checked against the log header) and re-converge on the
    // uninterrupted run's bytes.
    for stem in TENANT_SCENARIOS {
        let text = golden(&format!("{stem}.runlog.txt"));
        let log = RunLog::parse(&text).unwrap_or_else(|e| panic!("{stem}: {e}"));
        let full_report = golden(&format!("{stem}.golden.txt"));
        let full_trace = golden(&format!("{stem}.trace.txt"));
        for k in 0..=log.epochs.len() {
            let out = resume(&log.truncated(k).unwrap(), ExecMode::Serial, k)
                .unwrap_or_else(|e| panic!("{stem} resume at {k}: {e}"));
            assert_eq!(out.report.canonical(), full_report, "{stem} resume at {k}: report");
            assert_eq!(
                out.trace.expect("trace").canonical(),
                full_trace,
                "{stem} resume at {k}: trace"
            );
        }
    }
}

#[test]
fn tampered_admission_records_fail_resume() {
    // Flip the recorded rejection into an admission: the resumed run
    // re-derives the true verdicts and must refuse the log.
    let text = golden("tenant_starved_reject.runlog.txt");
    let log = RunLog::parse(&text).unwrap();
    let mut tampered = log.truncated(3).unwrap();
    let idx = tampered.admissions.iter().position(|a| !a.admitted).expect("a rejection");
    tampered.admissions[idx].admitted = true;
    let err = resume(&tampered, ExecMode::Serial, 3).unwrap_err();
    assert!(
        matches!(err, craqr::scenario::ReplayError::Diverged { epoch: None, .. }),
        "want admission divergence, got {err}"
    );
}
