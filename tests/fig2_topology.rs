//! Exact reproduction of the paper's Fig. 2 worked example.
//!
//! The setup, reconstructed from the figure and the Section V prose:
//!
//! - `R` is a 3×3 grid; the hashmap materializes exactly seven keys:
//!   `(1,1), (2,1), (1,2), (2,2)` for `Q⟨2⟩₂` and `(2,3), (3,2), (3,3)`
//!   for `Q⟨1⟩₁` (paper coordinates, 1-based).
//! - `Q⟨1⟩₁` acquires `rain` over the L-shaped `R1` at rate λ1.
//! - `Q⟨2⟩₂` acquires `temp` over the square `R2` at rate λ2.
//! - `Q⟨2⟩₃` acquires `temp` over the small `R3` inside cell `(2,2)` at
//!   rate λ3 — "P-operators are required only for Q⟨2⟩₃, since Q⟨1⟩₁ and
//!   Q⟨2⟩₂ perfectly overlap the grid cells".
//! - λ1 > λ2 > λ3.
//! - Deleting `Q⟨1⟩` removes "the U-, T-, and F-operators associated with
//!   the regions R(2,3), R(3,2) and R(3,3)" and their hashmap keys.

use craqr::core::plan::PlannerConfig;
use craqr::core::Fabricator;
use craqr::prelude::*;
use craqr::sensing::AttributeId;

const LAMBDA1: f64 = 4.0;
const LAMBDA2: f64 = 2.0;
const LAMBDA3: f64 = 1.0;

const RAIN: AttributeId = AttributeId(1);
const TEMP: AttributeId = AttributeId(2);

/// Paper 1-based cell coordinates → our 0-based [`CellId`].
fn paper_cell(q: u32, r: u32) -> CellId {
    CellId::new(q - 1, r - 1)
}

/// Unit rect of a paper cell.
fn paper_cell_rect(q: u32, r: u32) -> Rect {
    let (q0, r0) = ((q - 1) as f64, (r - 1) as f64);
    Rect::new(q0, r0, q0 + 1.0, r0 + 1.0)
}

struct Fig2 {
    fab: Fabricator,
    q1: QueryId,
    q2: QueryId,
    q3: QueryId,
}

fn build() -> Fig2 {
    let mut fab = Fabricator::new(
        Rect::with_size(3.0, 3.0),
        PlannerConfig {
            grid_side: 3,
            batch_duration: 5.0,
            enforce_min_area: false, // R3 is sub-cell-sized, as drawn
            ..Default::default()
        },
    );

    // R1: the L of cells (2,3), (3,2), (3,3) — rain at λ1.
    let r1_parts = vec![paper_cell_rect(2, 3), paper_cell_rect(3, 2), paper_cell_rect(3, 3)];
    let q1 = fab
        .insert_query_parts(
            AcquisitionQuery::new(RAIN, Rect::new(1.0, 1.0, 3.0, 3.0), LAMBDA1),
            &r1_parts,
        )
        .expect("Q1 plans");

    // R2: the 2×2 square of cells (1,1), (2,1), (1,2), (2,2) — temp at λ2.
    let q2 = fab
        .insert_query(AcquisitionQuery::new(TEMP, Rect::new(0.0, 0.0, 2.0, 2.0), LAMBDA2))
        .expect("Q2 plans");

    // R3: a small rect strictly inside cell (2,2) — temp at λ3.
    let r3 = Rect::new(1.25, 1.25, 1.9, 1.9);
    let q3 = fab.insert_query(AcquisitionQuery::new(TEMP, r3, LAMBDA3)).expect("Q3 plans");

    Fig2 { fab, q1, q2, q3 }
}

#[test]
fn hashmap_materializes_exactly_the_seven_keys() {
    let f = build();
    assert_eq!(f.fab.materialized_cells(), 7);
    assert_eq!(f.fab.materialized_chains(), 7);

    // Q1's three rain keys.
    for (q, r) in [(2, 3), (3, 2), (3, 3)] {
        assert!(
            f.fab.chain(paper_cell(q, r), RAIN).is_some(),
            "rain chain missing at paper cell ({q},{r})"
        );
    }
    // Q2/Q3's four temp keys.
    for (q, r) in [(1, 1), (2, 1), (1, 2), (2, 2)] {
        assert!(
            f.fab.chain(paper_cell(q, r), TEMP).is_some(),
            "temp chain missing at paper cell ({q},{r})"
        );
    }
}

#[test]
fn rain_chains_have_a_single_lambda1_tap() {
    let f = build();
    for (q, r) in [(2, 3), (3, 2), (3, 3)] {
        let chain = f.fab.chain(paper_cell(q, r), RAIN).unwrap();
        assert_eq!(chain.tap_rates(), vec![LAMBDA1]);
        assert_eq!(chain.consumer_count(), 1);
        // F target covers λ1 (rule 4).
        assert!(chain.f_rate() >= LAMBDA1);
    }
}

#[test]
fn shared_temp_cell_has_sorted_taps_with_branching_point() {
    let f = build();
    // Cell (2,2) serves both Q2 (full overlap at λ2) and Q3 (partial at λ3).
    let chain = f.fab.chain(paper_cell(2, 2), TEMP).unwrap();
    assert_eq!(chain.tap_rates(), vec![LAMBDA2, LAMBDA3], "descending λ2 > λ3");
    assert_eq!(chain.consumer_count(), 2);
    let diagram = chain.explain();
    assert!(diagram.contains(&format!("[{}]", f.q2)), "Q2 taps directly: {diagram}");
    assert!(diagram.contains(&format!("[{}⋉P]", f.q3)), "Q3 goes through P: {diagram}");

    // The other three temp cells serve only Q2, with no P.
    for (q, r) in [(1, 1), (2, 1), (1, 2)] {
        let chain = f.fab.chain(paper_cell(q, r), TEMP).unwrap();
        assert_eq!(chain.tap_rates(), vec![LAMBDA2]);
        assert!(!chain.explain().contains('P'), "{}", chain.explain());
    }
}

#[test]
fn q1_footprint_is_the_l_shape() {
    let f = build();
    let plan = f.fab.query_plan(f.q1).unwrap();
    assert_eq!(plan.cells.len(), 3);
    assert!(plan.cells.iter().all(|(_, _, full)| *full), "Q1 perfectly overlaps its cells");
    // The canonical L: [2,3)x[1,3) ∪ [1,2)x[2,3).
    let expected =
        Region::from_disjoint(vec![Rect::new(2.0, 1.0, 3.0, 3.0), Rect::new(1.0, 2.0, 2.0, 3.0)]);
    assert!(plan.footprint.covers_same_area(&expected), "{}", plan.footprint);
    assert_eq!(plan.footprint.part_count(), 2, "an L cannot be one rectangle");
}

#[test]
fn fabrication_respects_the_three_rates() {
    let mut f = build();
    let mut rng = seeded_rng(77);
    // Feed abundant raw tuples for both attributes over the whole region,
    // 5-minute epochs for 60 minutes.
    let region = Rect::with_size(3.0, 3.0);
    let raw = HomogeneousMdpp::new(20.0, region);
    let mut next_id = 0u64;
    for epoch in 0..12 {
        let window = SpaceTimeWindow::new(region, epoch as f64 * 5.0, (epoch + 1) as f64 * 5.0);
        let mut batch = Vec::new();
        for attr in [RAIN, TEMP] {
            for p in raw.sample(&window, &mut rng) {
                batch.push(CrowdTuple {
                    id: next_id,
                    attr,
                    point: p,
                    value: AttrValue::Bool(true),
                    sensor: SensorId(0),
                });
                next_id += 1;
            }
        }
        f.fab.ingest_batch(&batch);
    }

    let minutes = 60.0;
    for (qid, rate) in [(f.q1, LAMBDA1), (f.q2, LAMBDA2), (f.q3, LAMBDA3)] {
        let area = f.fab.query_plan(qid).unwrap().footprint.area();
        let out = f.fab.collect_output(qid).unwrap();
        let achieved = out.len() as f64 / (area * minutes);
        let rel = (achieved - rate).abs() / rate;
        assert!(rel < 0.2, "{qid}: achieved {achieved:.3} vs requested {rate} (rel {rel:.3})");
        // Outputs stay inside the query footprint and are time-ordered.
        let plan = f.fab.query_plan(qid).unwrap();
        for t in &out {
            assert!(plan.footprint.contains(t.point.x, t.point.y));
        }
        for pair in out.windows(2) {
            assert!(pair[0].point.t <= pair[1].point.t);
        }
    }
}

#[test]
fn deleting_q1_removes_exactly_its_three_cells() {
    let mut f = build();
    f.fab.delete_query(f.q1).expect("Q1 standing");
    // "…followed by the U-, T-, and F-operators associated with the regions
    // R(2,3), R(3,2) and R(3,3). Finally, all the entries in the hashmap
    // for these regions are removed."
    assert_eq!(f.fab.materialized_cells(), 4);
    for (q, r) in [(2, 3), (3, 2), (3, 3)] {
        assert!(f.fab.chain(paper_cell(q, r), RAIN).is_none());
    }
    // The temp side is untouched.
    for (q, r) in [(1, 1), (2, 1), (1, 2), (2, 2)] {
        assert!(f.fab.chain(paper_cell(q, r), TEMP).is_some());
    }
}

#[test]
fn deleting_q3_merges_consecutive_thins() {
    let mut f = build();
    f.fab.delete_query(f.q3).expect("Q3 standing");
    // "If two consecutive T-operators are created in this process, then
    // they are merged to form a single T-operator."
    let chain = f.fab.chain(paper_cell(2, 2), TEMP).unwrap();
    assert_eq!(chain.tap_rates(), vec![LAMBDA2]);
    assert_eq!(chain.consumer_count(), 1);
    assert!(!chain.explain().contains('P'));
}

#[test]
fn deleting_everything_empties_the_hashmap() {
    let mut f = build();
    f.fab.delete_query(f.q1).unwrap();
    f.fab.delete_query(f.q2).unwrap();
    f.fab.delete_query(f.q3).unwrap();
    assert_eq!(f.fab.materialized_cells(), 0);
    assert_eq!(f.fab.materialized_chains(), 0);
    assert!(f.fab.query_ids().is_empty());
}

#[test]
fn printed_plan_matches_figure_2b() {
    let f = build();
    let plan = f.fab.explain();
    // Spot-check the printable topology against the figure's structure.
    // (Our CellIds are 0-based: paper (2,2) prints as R(1,1).)
    assert!(plan.contains("R(1,1) A<2>: F(λ̄=2.000) → T(→2.000)"), "{plan}");
    assert!(plan.contains("T(→1.000)"), "{plan}");
    assert!(plan.contains("R(1,2) A<1>: F(λ̄=4.000) → T(→4.000)"), "{plan}");
}
