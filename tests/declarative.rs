//! The declarative query surface, end to end: text in, stream out, and
//! every rejection path a user can hit.

use craqr::core::query::ParseError;
use craqr::core::server::SubmitError;
use craqr::core::PlannerConfig;
use craqr::prelude::*;
use craqr::sensing::fields::ConstantField;

fn server() -> CraqrServer {
    let region = Rect::with_size(4.0, 4.0);
    let crowd = Crowd::new(CrowdConfig {
        region,
        population: PopulationConfig {
            size: 600,
            placement: Placement::Uniform,
            mobility: Mobility::Stationary,
            human_fraction: 0.0,
        },
        seed: 31,
    });
    let mut s = CraqrServer::new(crowd, ServerConfig::default());
    s.register_attribute("rain", true, Box::new(RainFront::new(2.0, 0.0, 2.0)));
    s.register_attribute("temp", false, Box::new(ConstantField(AttrValue::Float(18.5))));
    s
}

#[test]
fn the_papers_query_q1_runs() {
    // "Q⟨1⟩: Acquire the attribute A⟨1⟩ = rain from region R′ ⊂ R at the
    // rate of 10 /km2/min." (scaled down to match the simulated crowd)
    let mut s = server();
    let qid = s.submit("ACQUIRE rain FROM RECT(0, 0, 2, 2) RATE 0.5 PER KM2 PER MIN").unwrap();
    for _ in 0..6 {
        s.run_epoch();
    }
    let out = s.take_output(qid);
    assert!(!out.is_empty());
    // "The output of this query is a MCDS of tuples (t, x, y, rain)".
    for t in &out {
        assert!(matches!(t.value, AttrValue::Bool(_)));
        assert!(t.point.x < 2.0 && t.point.y < 2.0);
    }
}

#[test]
fn case_and_whitespace_are_forgiven() {
    let mut s = server();
    assert!(s.submit("acquire temp from rect( 0 , 0 , 2 , 2 ) rate 0.25").is_ok());
}

#[test]
fn every_user_error_is_reported_precisely() {
    let mut s = server();
    type Check = fn(&SubmitError) -> bool;
    let cases: Vec<(&str, Check)> = vec![
        ("", |e| matches!(e, SubmitError::Parse(ParseError::Expected("ACQUIRE", _)))),
        ("ACQUIRE fog FROM RECT(0,0,2,2) RATE 1", |e| {
            matches!(e, SubmitError::Parse(ParseError::UnknownAttribute(_)))
        }),
        ("ACQUIRE temp FROM RECT(0,0,2,2) RATE -1", |e| {
            matches!(e, SubmitError::Parse(ParseError::BadRate(_)))
        }),
        ("ACQUIRE temp FROM RECT(2,2,0,0) RATE 1", |e| {
            matches!(e, SubmitError::Parse(ParseError::BadRegion(_)))
        }),
        ("ACQUIRE temp FROM RECT(0,0,2,2) RATE 1 EXTRA", |e| {
            matches!(e, SubmitError::Parse(ParseError::TrailingInput(_)))
        }),
        ("ACQUIRE temp FROM RECT(90,90,92,92) RATE 1", |e| {
            matches!(e, SubmitError::Plan(craqr::core::plan::PlanError::OutsideRegion(_)))
        }),
        ("ACQUIRE temp FROM RECT(0,0,0.4,0.4) RATE 1", |e| {
            matches!(e, SubmitError::Plan(craqr::core::plan::PlanError::TooSmall { .. }))
        }),
    ];
    for (text, check) in cases {
        let err = s.submit(text).expect_err(text);
        assert!(check(&err), "{text} → {err}");
        // Every error explains itself.
        assert!(!err.to_string().is_empty());
    }
}

#[test]
fn min_area_rule_is_a_planner_knob() {
    let region = Rect::with_size(4.0, 4.0);
    let crowd = Crowd::new(CrowdConfig {
        region,
        population: PopulationConfig {
            size: 100,
            placement: Placement::Uniform,
            mobility: Mobility::Stationary,
            human_fraction: 0.0,
        },
        seed: 32,
    });
    let mut s = CraqrServer::new(
        crowd,
        ServerConfig {
            planner: PlannerConfig { enforce_min_area: false, ..Default::default() },
            ..Default::default()
        },
    );
    s.register_attribute("temp", false, Box::new(ConstantField(AttrValue::Float(1.0))));
    // Sub-cell query accepted when the rule is off (the Fig. 2 R3 case).
    assert!(s.submit("ACQUIRE temp FROM RECT(0.1, 0.1, 0.6, 0.6) RATE 1").is_ok());
}

#[test]
fn queries_are_isolated_per_attribute() {
    let mut s = server();
    let rain = s.submit("ACQUIRE rain FROM RECT(0, 0, 2, 2) RATE 0.4").unwrap();
    let temp = s.submit("ACQUIRE temp FROM RECT(0, 0, 2, 2) RATE 0.4").unwrap();
    for _ in 0..6 {
        s.run_epoch();
    }
    let rain_out = s.take_output(rain);
    let temp_out = s.take_output(temp);
    assert!(rain_out.iter().all(|t| matches!(t.value, AttrValue::Bool(_))));
    assert!(temp_out.iter().all(|t| t.value == AttrValue::Float(18.5)));
}
