//! The pipelined-executor determinism tier.
//!
//! The staged dataflow executor ([`craqr::core::EpochDriver::run_pipelined`])
//! overlaps consecutive epochs across four worker threads. Pipelining is
//! an execution strategy, never an output: everything checksummed —
//! reports, traces, run logs — must be **byte-identical** to the serial
//! staged schedule, for every committed scenario, and the whole
//! crash/salvage/resume story must survive with stages mid-flight.
//!
//! Three layers:
//!
//! 1. corpus-wide identity: every spec under `scenarios/` runs serial
//!    and pipelined; reports (and, where recorded, traces and logs)
//!    must match byte-for-byte *and* match the committed goldens — so
//!    the pipelined executor is pinned to the same blessed bytes;
//! 2. replay + resume land on the staged dataflow too and still
//!    re-converge on the recording run's sealed checksums;
//! 3. the chaos matrix: kill a pipelined run at every crash point of
//!    every epoch, salvage the torn stream, resume (pipelined), and
//!    land byte-identical to the uninterrupted *serial* reference —
//!    recovery is portable across executors, not just shard counts.

use craqr::core::{CrashPoint, ExecMode};
use craqr::runlog::parse_salvage;
use craqr::scenario::{replay_pipelined, resume_pipelined, RunOutput, ScenarioRunner};
use std::path::{Path, PathBuf};

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn scenario_files() -> Vec<PathBuf> {
    craqr::scenario::scenario_files(&repo_root().join("scenarios")).expect("scenarios dir")
}

fn runner(path: &Path) -> ScenarioRunner {
    ScenarioRunner::from_file(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Every committed scenario produces byte-identical artifacts on the
/// pipelined executor — and those bytes are the committed goldens, so
/// serial, `Sharded(4)`, and pipelined are all pinned to the same files.
#[test]
fn every_committed_scenario_is_pipeline_identical() {
    for path in scenario_files() {
        let runner = runner(&path);
        let name = runner.spec().name.clone();
        let seed = runner.spec().seed;
        let serial = runner.run_full(ExecMode::Serial, seed).unwrap();
        let piped = runner.run_full_pipelined(ExecMode::Serial, seed).unwrap();
        assert_eq!(
            serial.report.canonical(),
            piped.report.canonical(),
            "{name}: pipelined report diverges from serial"
        );
        assert_eq!(
            serial.trace.as_ref().map(|t| t.canonical()),
            piped.trace.as_ref().map(|t| t.canonical()),
            "{name}: pipelined trace diverges from serial"
        );
        assert_eq!(
            serial.log.as_ref().map(|l| l.canonical()),
            piped.log.as_ref().map(|l| l.canonical()),
            "{name}: pipelined run log diverges from serial"
        );
        let golden = repo_root().join("tests/goldens").join(format!("{name}.golden.txt"));
        let golden = std::fs::read_to_string(&golden).unwrap();
        assert_eq!(golden, piped.report.canonical(), "{name}: pipelined report is off-golden");

        // Pipelining composes with sharded ingestion: same bytes again.
        let piped_sharded = runner.run_full_pipelined(ExecMode::Sharded(4), seed).unwrap();
        assert_eq!(
            golden,
            piped_sharded.report.canonical(),
            "{name}: pipelined Sharded(4) report is off-golden"
        );
    }
}

/// Replay and resume drive the staged dataflow too and re-converge on
/// the recording run's sealed checksums under every executor shape.
#[test]
fn pipelined_replay_and_resume_reconverge() {
    let runner = runner(&repo_root().join("scenarios/drift_rate_jump.toml"));
    let live = runner.run_recorded(ExecMode::Serial, runner.spec().seed).unwrap();
    let log = live.log.as_ref().expect("[runlog] spec records");

    for exec in [ExecMode::Serial, ExecMode::Sharded(3)] {
        let replayed = replay_pipelined(log, exec).unwrap_or_else(|e| panic!("{exec:?}: {e}"));
        assert_eq!(
            replayed.report.checksum(),
            live.report.checksum(),
            "{exec:?}: pipelined replay report diverged"
        );
        assert_eq!(
            replayed.log.as_ref().unwrap().canonical(),
            log.canonical(),
            "{exec:?}: pipelined replay re-recording diverged"
        );
    }

    for k in [0, 1, log.epochs.len() / 2, log.epochs.len()] {
        let resumed = resume_pipelined(&log.truncated(k).unwrap(), ExecMode::Serial, k)
            .unwrap_or_else(|e| panic!("pipelined resume at {k}: {e}"));
        assert_eq!(
            resumed.report.checksum(),
            live.report.checksum(),
            "pipelined resume at {k}: report diverged"
        );
        assert_eq!(
            resumed.trace.as_ref().map(|t| t.checksum()),
            live.trace.as_ref().map(|t| t.checksum()),
            "pipelined resume at {k}: trace diverged"
        );
    }
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("craqr-pipechaos-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

/// Kills a **pipelined** run at `(point, epoch)`, salvages the torn
/// stream, resumes on the pipelined executor, and hands back the
/// recovered output for byte comparison.
fn kill_salvage_resume(
    runner: &ScenarioRunner,
    exec: ExecMode,
    point: CrashPoint,
    epoch: u32,
    path: &Path,
) -> RunOutput {
    let durable = runner
        .run_to_crash_pipelined(exec, runner.spec().seed, point, epoch, path)
        .unwrap_or_else(|e| panic!("pipelined crash {point} @ epoch {epoch}: {e}"));
    assert_eq!(
        durable, epoch as usize,
        "{point} @ epoch {epoch}: the staged executor must leave exactly the serial \
         schedule's durable prefix"
    );
    let src = std::fs::read_to_string(path).unwrap();
    let salvage = parse_salvage(&src)
        .unwrap_or_else(|e| panic!("{point} @ epoch {epoch}: nothing salvageable: {e}"));
    assert_eq!(salvage.log.epochs.len(), durable, "{point} @ epoch {epoch}: salvage size");
    assert!(salvage.torn.is_some(), "{point} @ epoch {epoch}: a killed stream never looks sealed");
    resume_pipelined(&salvage.log, exec, durable)
        .unwrap_or_else(|e| panic!("{point} @ epoch {epoch}: pipelined resume: {e}"))
}

/// The full kill matrix with stages mid-flight: every crash point of
/// every epoch dies inside the pipelined dataflow, salvages, resumes
/// pipelined, and lands byte-identical to the uninterrupted **serial**
/// reference.
#[test]
fn pipelined_chaos_matrix_recovers_byte_identical() {
    let runner = runner(&repo_root().join("scenarios/fault_flaky_crowd.toml"));
    let scratch = Scratch::new("serial");
    let reference = runner.run_recorded(ExecMode::Serial, runner.spec().seed).unwrap();
    for epoch in 0..runner.spec().epochs {
        for point in CrashPoint::ALL {
            let path = scratch.0.join(format!("kill.{}.e{epoch}.runlog.txt", point.name()));
            let recovered = kill_salvage_resume(&runner, ExecMode::Serial, point, epoch, &path);
            assert_eq!(
                recovered.report.checksum(),
                reference.report.checksum(),
                "pipelined {point} @ epoch {epoch}: recovered report diverges"
            );
            assert_eq!(
                recovered.log.as_ref().unwrap().canonical(),
                reference.log.as_ref().unwrap().canonical(),
                "pipelined {point} @ epoch {epoch}: regenerated log is not byte-identical"
            );
        }
    }
}

/// A few matrix cells under `Sharded(4)` ingestion, still against the
/// serial reference: crash recovery is portable across both executor
/// axes at once (shard count and pipelining).
#[test]
fn pipelined_sharded_recovery_matches_the_serial_reference() {
    let runner = runner(&repo_root().join("scenarios/fault_flaky_crowd.toml"));
    let scratch = Scratch::new("sharded");
    let reference = runner.run_recorded(ExecMode::Serial, runner.spec().seed).unwrap();
    for epoch in [0, runner.spec().epochs - 1] {
        for point in [CrashPoint::PostDrain, CrashPoint::MidLogAppend] {
            let path = scratch.0.join(format!("kill.{}.e{epoch}.runlog.txt", point.name()));
            let recovered = kill_salvage_resume(&runner, ExecMode::Sharded(4), point, epoch, &path);
            assert_eq!(
                recovered.report.checksum(),
                reference.report.checksum(),
                "pipelined sharded {point} @ epoch {epoch}: recovered report diverges"
            );
        }
    }
}
